package rtl

import (
	"testing"

	"mlvfpga/internal/resource"
)

const chainDesign = `
module stage(input clk, input [31:0] d, output reg [31:0] q);
  always @(posedge clk) q <= d + 32'd1;
endmodule
module narrow(input clk, input [31:0] d, output reg [7:0] q);
  always @(posedge clk) q <= d[7:0];
endmodule
module top(input clk, input [31:0] in, output [7:0] out);
  wire [31:0] m1;
  wire [31:0] m2;
  stage  s0 (.clk(clk), .d(in), .q(m1));
  stage  s1 (.clk(clk), .d(m1), .q(m2));
  narrow s2 (.clk(clk), .d(m2), .q(out));
endmodule
`

func TestBasicGraphChain(t *testing.T) {
	d, err := ParseDesign(chainDesign, "top")
	if err != nil {
		t.Fatal(err)
	}
	g, err := d.BasicGraph(elab(t, d, "top"))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Insts) != 3 {
		t.Fatalf("insts = %d, want 3\n%s", len(g.Insts), g)
	}
	byPath := map[string]int{}
	for i, n := range g.Insts {
		byPath[n.Path] = i
	}
	// s0 -> s1 with 32 bits, s1 -> s2 with 32 bits.
	if bw := g.Bandwidth(byPath["s0"], byPath["s1"]); bw != 32 {
		t.Errorf("s0-s1 bandwidth = %d, want 32\n%s", bw, g)
	}
	if bw := g.Bandwidth(byPath["s1"], byPath["s2"]); bw != 32 {
		t.Errorf("s1-s2 bandwidth = %d, want 32", bw)
	}
	if bw := g.Bandwidth(byPath["s0"], byPath["s2"]); bw != 0 {
		t.Errorf("s0-s2 bandwidth = %d, want 0", bw)
	}
	// Boundary edges exist: in -> s0, s2 -> out, clk -> everyone.
	boundaryIn := 0
	for _, e := range g.Edges {
		if e.From == Boundary {
			boundaryIn++
		}
	}
	if boundaryIn == 0 {
		t.Error("no boundary edges found")
	}
}

func TestBasicGraphHierarchical(t *testing.T) {
	// Basic modules nested two levels deep must still appear as nodes with
	// connectivity traced through the intermediate module's ports.
	d, err := ParseDesign(`
		module leafm(input [15:0] a, output [15:0] y); assign y = a ^ 16'hFFFF; endmodule
		module mid(input [15:0] p, output [15:0] q);
		  wire [15:0] w;
		  leafm l0 (.a(p), .y(w));
		  leafm l1 (.a(w), .y(q));
		endmodule
		module top(input [15:0] x, output [15:0] z);
		  mid m (.p(x), .q(z));
		endmodule`, "top")
	if err != nil {
		t.Fatal(err)
	}
	g, err := d.BasicGraph(elab(t, d, "top"))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Insts) != 2 {
		t.Fatalf("insts = %d, want 2\n%s", len(g.Insts), g)
	}
	if g.Insts[0].Path != "m.l0" || g.Insts[1].Path != "m.l1" {
		t.Errorf("paths = %q, %q", g.Insts[0].Path, g.Insts[1].Path)
	}
	if bw := g.Bandwidth(0, 1); bw != 16 {
		t.Errorf("l0-l1 bandwidth = %d, want 16\n%s", bw, g)
	}
}

func TestBasicGraphTopIsBasic(t *testing.T) {
	d, err := ParseDesign("module solo(input a, output y); assign y = a; endmodule", "solo")
	if err != nil {
		t.Fatal(err)
	}
	g, err := d.BasicGraph(elab(t, d, "solo"))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Insts) != 1 || len(g.Edges) != 0 {
		t.Errorf("solo graph = %s", g)
	}
}

func TestBasicGraphFanout(t *testing.T) {
	d, err := ParseDesign(`
		module producer(input [7:0] a, output [7:0] y); assign y = a; endmodule
		module consumer(input [7:0] a, output [7:0] y); assign y = ~a; endmodule
		module top(input [7:0] x, output [7:0] z1, output [7:0] z2);
		  wire [7:0] w;
		  producer p (.a(x), .y(w));
		  consumer c1 (.a(w), .y(z1));
		  consumer c2 (.a(w), .y(z2));
		endmodule`, "top")
	if err != nil {
		t.Fatal(err)
	}
	g, err := d.BasicGraph(elab(t, d, "top"))
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string]int{}
	for i, n := range g.Insts {
		byPath[n.Path] = i
	}
	if bw := g.Bandwidth(byPath["p"], byPath["c1"]); bw != 8 {
		t.Errorf("p-c1 = %d, want 8", bw)
	}
	if bw := g.Bandwidth(byPath["p"], byPath["c2"]); bw != 8 {
		t.Errorf("p-c2 = %d, want 8", bw)
	}
	// The two consumers share an elaboration, visible to the decomposer.
	if g.Insts[byPath["c1"]].Elab != g.Insts[byPath["c2"]].Elab {
		t.Error("identical consumers must share an elaboration")
	}
}

func TestEstimatePrimitives(t *testing.T) {
	d, err := ParseDesign(`
		module macro(input [17:0] a, input [17:0] b, output [47:0] p, input clk);
		  DSP48E2 mul (.A(a), .B(b), .P(p), .CLK(clk));
		  RAMB36E2 mem0 ();
		  RAMB18E2 mem1 ();
		  URAM288 big ();
		  FDRE ff ();
		  LUT6 l ();
		  CARRY8 cy ();
		endmodule`, "macro")
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.EstimateResources(elab(t, d, "macro"))
	if err != nil {
		t.Fatal(err)
	}
	want := resource.Vector{DSPs: 1, BRAMKb: 54, URAMKb: 288, DFFs: 1, LUTs: 9}
	if got != want {
		t.Errorf("EstimateResources = %v, want %v", got, want)
	}
}

func TestEstimateBehavioral(t *testing.T) {
	d, err := ParseDesign(`
		module m(input clk, input [15:0] a, input [15:0] b, output reg [15:0] q);
		  wire [15:0] sum;
		  assign sum = a + b;
		  always @(posedge clk) q <= sum;
		endmodule`, "m")
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.EstimateResources(elab(t, d, "m"))
	if err != nil {
		t.Fatal(err)
	}
	if got.DFFs != 16 {
		t.Errorf("DFFs = %d, want 16", got.DFFs)
	}
	if got.LUTs < 16 {
		t.Errorf("LUTs = %d, want >= 16 for a 16-bit adder", got.LUTs)
	}
	if got.DSPs != 0 {
		t.Errorf("DSPs = %d, want 0", got.DSPs)
	}
}

func TestEstimateMultiplierUsesDSP(t *testing.T) {
	d, err := ParseDesign(`
		module mul(input [35:0] a, input [17:0] b, output [53:0] p);
		  assign p = a * b;
		endmodule`, "mul")
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.EstimateResources(elab(t, d, "mul"))
	if err != nil {
		t.Fatal(err)
	}
	if got.DSPs != 2 { // ceil(36/18) * ceil(18/18)
		t.Errorf("DSPs = %d, want 2", got.DSPs)
	}
}

func TestEstimateHierarchySums(t *testing.T) {
	d, err := ParseDesign(`
		module leafm(input clk, input [7:0] d, output reg [7:0] q);
		  always @(posedge clk) q <= d;
		endmodule
		module top(input clk, input [7:0] x, output [7:0] y);
		  wire [7:0] w;
		  leafm a (.clk(clk), .d(x), .q(w));
		  leafm b (.clk(clk), .d(w), .q(y));
		endmodule`, "top")
	if err != nil {
		t.Fatal(err)
	}
	top, err := d.EstimateResources(elab(t, d, "top"))
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := d.EstimateResources(elab(t, d, "leafm"))
	if err != nil {
		t.Fatal(err)
	}
	if top != leaf.Scale(2) {
		t.Errorf("top = %v, want 2x leaf = %v", top, leaf.Scale(2))
	}
}

func TestPrimitiveCost(t *testing.T) {
	if v, ok := PrimitiveCost("LUT3"); !ok || v.LUTs != 1 {
		t.Errorf("LUT3 = %v, %v", v, ok)
	}
	if _, ok := PrimitiveCost("LUT9"); ok {
		t.Error("LUT9 must be unknown")
	}
	if _, ok := PrimitiveCost("mystery_ip"); ok {
		t.Error("unknown blackbox must report not-known")
	}
}
