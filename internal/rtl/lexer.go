package rtl

import (
	"strings"
	"unicode"
)

// lexer turns source text into tokens. It handles // and /* */ comments,
// identifiers (including escaped \name ), sized and unsized numeric
// literals, and one- and two-character punctuation.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// twoCharOps are the multi-character operators the subset supports.
var twoCharOps = map[string]bool{
	"<<": true, ">>": true, "==": true, "!=": true,
	"<=": true, ">=": true, "&&": true, "||": true,
}

func (l *lexer) errorf(msg string) *SyntaxError {
	return &SyntaxError{Line: l.line, Col: l.col, Msg: msg}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// skipSpaceAndComments consumes whitespace and comments; it returns an error
// for an unterminated block comment.
func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			start := *l
			l.advance()
			l.advance()
			closed := false
			for l.pos+1 < len(l.src)+1 && l.pos < len(l.src) {
				if l.peekByte() == '*' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return start.errorf("unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || unicode.IsLetter(rune(c))
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || unicode.IsDigit(rune(c))
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line, col: l.col}, nil
	}
	startLine, startCol := l.line, l.col
	c := l.peekByte()

	switch {
	case isIdentStart(c):
		var sb strings.Builder
		for l.pos < len(l.src) && isIdentCont(l.peekByte()) {
			sb.WriteByte(l.advance())
		}
		text := sb.String()
		kind := tokIdent
		if keywords[text] {
			kind = tokKeyword
		}
		return token{kind: kind, text: text, line: startLine, col: startCol}, nil

	case c == '\\':
		// Escaped identifier: backslash to next whitespace.
		l.advance()
		var sb strings.Builder
		for l.pos < len(l.src) {
			b := l.peekByte()
			if b == ' ' || b == '\t' || b == '\n' || b == '\r' {
				break
			}
			sb.WriteByte(l.advance())
		}
		if sb.Len() == 0 {
			return token{}, &SyntaxError{Line: startLine, Col: startCol, Msg: "empty escaped identifier"}
		}
		return token{kind: tokIdent, text: sb.String(), line: startLine, col: startCol}, nil

	case unicode.IsDigit(rune(c)) || c == '\'':
		// Numeric literal: optional size, optional 'b/'h/'d/'o base, digits.
		var sb strings.Builder
		for l.pos < len(l.src) && unicode.IsDigit(rune(l.peekByte())) {
			sb.WriteByte(l.advance())
		}
		if l.pos < len(l.src) && l.peekByte() == '\'' {
			sb.WriteByte(l.advance())
			if l.pos >= len(l.src) {
				return token{}, &SyntaxError{Line: startLine, Col: startCol, Msg: "truncated based literal"}
			}
			base := l.advance()
			sb.WriteByte(base)
			switch base {
			case 'b', 'B', 'h', 'H', 'd', 'D', 'o', 'O':
			default:
				return token{}, &SyntaxError{Line: startLine, Col: startCol, Msg: "bad number base '" + string(base) + "'"}
			}
			nDigits := 0
			for l.pos < len(l.src) {
				b := l.peekByte()
				if b == '_' {
					l.advance()
					continue
				}
				if isHexDigit(b) {
					sb.WriteByte(l.advance())
					nDigits++
					continue
				}
				break
			}
			if nDigits == 0 {
				return token{}, &SyntaxError{Line: startLine, Col: startCol, Msg: "based literal has no digits"}
			}
		}
		return token{kind: tokNumber, text: sb.String(), line: startLine, col: startCol}, nil

	default:
		// Punctuation; prefer two-character operators.
		if l.pos+1 < len(l.src) {
			two := l.src[l.pos : l.pos+2]
			if twoCharOps[two] {
				l.advance()
				l.advance()
				return token{kind: tokPunct, text: two, line: startLine, col: startCol}, nil
			}
		}
		switch c {
		case '(', ')', '[', ']', '{', '}', ';', ',', '.', ':', '#', '=', '@',
			'?', '+', '-', '*', '/', '%', '&', '|', '^', '~', '!', '<', '>':
			l.advance()
			return token{kind: tokPunct, text: string(c), line: startLine, col: startCol}, nil
		}
		return token{}, &SyntaxError{Line: startLine, Col: startCol, Msg: "unexpected character '" + string(c) + "'"}
	}
}

func isHexDigit(b byte) bool {
	return b >= '0' && b <= '9' || b >= 'a' && b <= 'f' || b >= 'A' && b <= 'F' ||
		b == 'x' || b == 'X' || b == 'z' || b == 'Z'
}

// lexAll tokenizes the whole input, returning the token stream.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
