package rtl

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"mlvfpga/internal/parpool"
)

// parser is a recursive-descent parser over a pre-lexed token stream.
type parser struct {
	toks []token
	pos  int
}

// Parse parses Verilog-subset source text into a list of modules.
func Parse(src string) ([]*Module, error) {
	return ParseParallel(src, 1)
}

// ParseParallel parses like Parse but distributes per-module parsing over
// up to workers goroutines (workers <= 1 is strictly sequential). Lexing
// stays sequential; the token stream is then split at top-level
// module/endmodule boundaries — the subset has no nested modules — and the
// spans parse independently. The module list and any reported error are
// identical to the sequential parse.
func ParseParallel(src string, workers int) ([]*Module, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	spans, ok := moduleSpans(toks)
	if !ok || len(spans) < 2 {
		// Malformed top level (or nothing to fan out): the single-stream
		// parser produces the canonical error positions.
		return parseStream(toks)
	}
	return parpool.Map(context.Background(), workers, len(spans), func(_ context.Context, i int) (*Module, error) {
		// Three-index slice: the appended EOF sentinel must not clobber
		// the next span's first token in the shared backing array.
		lo, hi := spans[i][0], spans[i][1]
		spanToks := append(toks[lo:hi:hi], token{kind: tokEOF, line: toks[hi-1].line, col: toks[hi-1].col})
		p := &parser{toks: spanToks}
		return p.parseModule()
	})
}

// moduleSpans splits a token stream into per-module half-open index ranges,
// each ending just past its "endmodule". It reports false when the stream
// does not look like a plain module sequence.
func moduleSpans(toks []token) ([][2]int, bool) {
	var spans [][2]int
	i := 0
	for i < len(toks) && toks[i].kind != tokEOF {
		if !toks[i].is("module") {
			return nil, false
		}
		j := i + 1
		for j < len(toks) && !toks[j].is("endmodule") && toks[j].kind != tokEOF {
			j++
		}
		if j >= len(toks) || !toks[j].is("endmodule") {
			return nil, false
		}
		spans = append(spans, [2]int{i, j + 1})
		i = j + 1
	}
	return spans, true
}

// parseStream parses a whole token stream module by module.
func parseStream(toks []token) ([]*Module, error) {
	p := &parser{toks: toks}
	var mods []*Module
	for !p.at(tokEOF) {
		m, err := p.parseModule()
		if err != nil {
			return nil, err
		}
		mods = append(mods, m)
	}
	return mods, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) peek() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) at(k tokKind) bool { return p.cur().kind == k }

func (p *parser) accept(text string) bool {
	if p.cur().is(text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return p.errorf("expected %q, found %s", text, p.cur())
	}
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	t := p.cur()
	return &SyntaxError{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) ident() (string, error) {
	if !p.at(tokIdent) {
		return "", p.errorf("expected identifier, found %s", p.cur())
	}
	name := p.cur().text
	p.pos++
	return name, nil
}

// parseModule parses one complete module ... endmodule.
func (p *parser) parseModule() (*Module, error) {
	srcLine := p.cur().line
	if err := p.expect("module"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	m := &Module{Name: name, SrcLine: srcLine}

	// Optional parameter list: #(parameter N = 8, parameter M = 4)
	if p.accept("#") {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		for {
			if !p.accept("parameter") {
				return nil, p.errorf("expected \"parameter\" in parameter port list, found %s", p.cur())
			}
			prm, err := p.parseParamDecl(false)
			if err != nil {
				return nil, err
			}
			m.Params = append(m.Params, prm)
			if p.accept(",") {
				continue
			}
			break
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}

	// Port list (ANSI style): (input [7:0] a, output reg q, ...)
	if p.accept("(") {
		if !p.accept(")") {
			for {
				ports, err := p.parsePortDecl()
				if err != nil {
					return nil, err
				}
				m.Ports = append(m.Ports, ports...)
				if p.accept(",") {
					continue
				}
				break
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
		}
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}

	// Module items.
	for !p.cur().is("endmodule") {
		if p.at(tokEOF) {
			return nil, p.errorf("unexpected end of input inside module %q", m.Name)
		}
		if err := p.parseModuleItem(m); err != nil {
			return nil, err
		}
	}
	p.pos++ // consume endmodule
	return m, nil
}

// parseParamDecl parses NAME = expr after the parameter/localparam keyword.
func (p *parser) parseParamDecl(isLocal bool) (Param, error) {
	name, err := p.ident()
	if err != nil {
		return Param{}, err
	}
	if err := p.expect("="); err != nil {
		return Param{}, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return Param{}, err
	}
	return Param{Name: name, Default: e, IsLocal: isLocal}, nil
}

// parsePortDecl parses one port declaration group: direction, optional reg,
// optional range, then one or more names (a, b, c). All names share the
// declaration.
func (p *parser) parsePortDecl() ([]Port, error) {
	var dir Dir
	switch {
	case p.accept("input"):
		dir = Input
	case p.accept("output"):
		dir = Output
	case p.accept("inout"):
		dir = Inout
	default:
		return nil, p.errorf("expected port direction, found %s", p.cur())
	}
	isReg := p.accept("reg")
	p.accept("wire") // "input wire x" is legal; wire is the default
	rng, err := p.parseOptRange()
	if err != nil {
		return nil, err
	}
	var ports []Port
	for {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		ports = append(ports, Port{Name: name, Dir: dir, Range: rng, IsReg: isReg})
		// Multiple names within one decl group are separated by commas but a
		// comma may also start a whole new decl; only continue if the next
		// token after the comma is another identifier.
		if p.cur().is(",") && p.peek().kind == tokIdent {
			p.pos++ // consume comma, stay in group
			continue
		}
		break
	}
	return ports, nil
}

// parseOptRange parses [msb:lsb] if present.
func (p *parser) parseOptRange() (Range, error) {
	if !p.accept("[") {
		return Range{}, nil
	}
	msb, err := p.parseExpr()
	if err != nil {
		return Range{}, err
	}
	if err := p.expect(":"); err != nil {
		return Range{}, err
	}
	lsb, err := p.parseExpr()
	if err != nil {
		return Range{}, err
	}
	if err := p.expect("]"); err != nil {
		return Range{}, err
	}
	return Range{Msb: msb, Lsb: lsb}, nil
}

// parseModuleItem parses one item in the module body.
func (p *parser) parseModuleItem(m *Module) error {
	switch {
	case p.accept("parameter"):
		prm, err := p.parseParamDecl(false)
		if err != nil {
			return err
		}
		m.Params = append(m.Params, prm)
		return p.expect(";")

	case p.accept("localparam"):
		prm, err := p.parseParamDecl(true)
		if err != nil {
			return err
		}
		m.Params = append(m.Params, prm)
		return p.expect(";")

	case p.cur().is("wire") || p.cur().is("reg"):
		isReg := p.cur().text == "reg"
		p.pos++
		rng, err := p.parseOptRange()
		if err != nil {
			return err
		}
		for {
			name, err := p.ident()
			if err != nil {
				return err
			}
			m.Nets = append(m.Nets, Net{Name: name, Range: rng, IsReg: isReg})
			if p.accept(",") {
				continue
			}
			break
		}
		return p.expect(";")

	case p.accept("assign"):
		lhs, err := p.parsePrimary()
		if err != nil {
			return err
		}
		if err := p.expect("="); err != nil {
			return err
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return err
		}
		m.Assigns = append(m.Assigns, Assign{LHS: lhs, RHS: rhs})
		return p.expect(";")

	case p.accept("always"):
		alw, err := p.parseAlways()
		if err != nil {
			return err
		}
		m.Alwayses = append(m.Alwayses, alw)
		return nil

	case p.at(tokIdent):
		inst, err := p.parseInstance()
		if err != nil {
			return err
		}
		m.Instances = append(m.Instances, inst)
		return nil

	default:
		return p.errorf("unexpected %s in module body", p.cur())
	}
}

// parseAlways parses: always @(posedge clk) <stmt>
// where stmt is a nonblocking assignment, an if/else chain, or a begin/end
// block of those.
func (p *parser) parseAlways() (Always, error) {
	var a Always
	if err := p.expect("@"); err != nil {
		return a, err
	}
	if err := p.expect("("); err != nil {
		return a, err
	}
	switch {
	case p.accept("posedge"):
	case p.accept("negedge"):
		a.Negedge = true
	default:
		return a, p.errorf("expected posedge or negedge, found %s", p.cur())
	}
	clk, err := p.ident()
	if err != nil {
		return a, err
	}
	a.Clock = clk
	if err := p.expect(")"); err != nil {
		return a, err
	}
	body, err := p.parseSeqStmt(nil)
	if err != nil {
		return a, err
	}
	a.Body = body
	return a, nil
}

// parseSeqStmt parses one sequential statement under the given guard chain,
// returning the flattened nonblocking assignments.
func (p *parser) parseSeqStmt(guard []Expr) ([]SeqAssign, error) {
	switch {
	case p.accept("begin"):
		var out []SeqAssign
		for !p.accept("end") {
			if p.at(tokEOF) {
				return nil, p.errorf("unexpected end of input in begin block")
			}
			stmts, err := p.parseSeqStmt(guard)
			if err != nil {
				return nil, err
			}
			out = append(out, stmts...)
		}
		return out, nil

	case p.accept("if"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		thenGuard := append(append([]Expr{}, guard...), cond)
		out, err := p.parseSeqStmt(thenGuard)
		if err != nil {
			return nil, err
		}
		if p.accept("else") {
			elseGuard := append(append([]Expr{}, guard...), &Unary{Op: "!", X: cond})
			elseStmts, err := p.parseSeqStmt(elseGuard)
			if err != nil {
				return nil, err
			}
			out = append(out, elseStmts...)
		}
		return out, nil

	default:
		lhs, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		if err := p.expect("<="); err != nil {
			return nil, err
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return []SeqAssign{{LHS: lhs, RHS: rhs, Guard: guard}}, nil
	}
}

// parseInstance parses: modname [#(.P(v),...)] instname ( .port(expr), ... );
// Positional connections ( expr, expr ) are also accepted.
func (p *parser) parseInstance() (Instance, error) {
	var inst Instance
	modName, err := p.ident()
	if err != nil {
		return inst, err
	}
	inst.ModuleName = modName
	inst.Conns = map[string]Expr{}

	if p.accept("#") {
		if err := p.expect("("); err != nil {
			return inst, err
		}
		inst.Params = map[string]Expr{}
		for {
			if err := p.expect("."); err != nil {
				return inst, err
			}
			pname, err := p.ident()
			if err != nil {
				return inst, err
			}
			if err := p.expect("("); err != nil {
				return inst, err
			}
			val, err := p.parseExpr()
			if err != nil {
				return inst, err
			}
			if err := p.expect(")"); err != nil {
				return inst, err
			}
			inst.Params[pname] = val
			if p.accept(",") {
				continue
			}
			break
		}
		if err := p.expect(")"); err != nil {
			return inst, err
		}
	}

	iname, err := p.ident()
	if err != nil {
		return inst, err
	}
	inst.Name = iname

	if err := p.expect("("); err != nil {
		return inst, err
	}
	if !p.accept(")") {
		positional := 0
		for {
			if p.accept(".") {
				pname, err := p.ident()
				if err != nil {
					return inst, err
				}
				if err := p.expect("("); err != nil {
					return inst, err
				}
				var val Expr
				if !p.cur().is(")") {
					val, err = p.parseExpr()
					if err != nil {
						return inst, err
					}
				}
				if err := p.expect(")"); err != nil {
					return inst, err
				}
				if _, dup := inst.Conns[pname]; dup {
					return inst, p.errorf("duplicate connection to port %q", pname)
				}
				inst.Conns[pname] = val
				inst.Order = append(inst.Order, pname)
			} else {
				val, err := p.parseExpr()
				if err != nil {
					return inst, err
				}
				key := positionalKey(positional)
				positional++
				inst.Conns[key] = val
				inst.Order = append(inst.Order, key)
			}
			if p.accept(",") {
				continue
			}
			break
		}
		if err := p.expect(")"); err != nil {
			return inst, err
		}
	}
	return inst, p.expect(";")
}

// positionalKey encodes a positional connection index as a reserved key that
// cannot collide with a legal port name.
func positionalKey(i int) string { return fmt.Sprintf("$pos%d", i) }

// isPositionalKey decodes positionalKey, returning the index.
func isPositionalKey(k string) (int, bool) {
	if !strings.HasPrefix(k, "$pos") {
		return 0, false
	}
	n, err := strconv.Atoi(k[len("$pos"):])
	if err != nil {
		return 0, false
	}
	return n, true
}

// Operator precedence, loosest first. The conditional operator is handled
// separately above this table.
var precedence = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

// parseExpr parses a full expression including ?:.
func (p *parser) parseExpr() (Expr, error) {
	cond, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if p.accept("?") {
		thenE, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		elseE, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &Cond{If: cond, Then: thenE, Else: elseE}, nil
	}
	return cond, nil
}

func (p *parser) parseBinary(level int) (Expr, error) {
	if level >= len(precedence) {
		return p.parseUnary()
	}
	left, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range precedence[level] {
			if p.cur().is(op) {
				p.pos++
				right, err := p.parseBinary(level + 1)
				if err != nil {
					return nil, err
				}
				left = &Binary{Op: op, L: left, R: right}
				matched = true
				break
			}
		}
		if !matched {
			return left, nil
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	for _, op := range []string{"~", "!", "-", "&", "|", "^"} {
		if p.cur().is(op) {
			p.pos++
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Unary{Op: op, X: x}, nil
		}
	}
	return p.parsePrimary()
}

// parsePrimary parses identifiers (with optional index/slice), numbers,
// parenthesized expressions, concatenations and replications.
func (p *parser) parsePrimary() (Expr, error) {
	switch {
	case p.at(tokIdent):
		name := p.cur().text
		p.pos++
		var e Expr = &Ident{Name: name}
		return p.parseSelects(e)

	case p.at(tokNumber):
		n, err := parseNumber(p.cur().text)
		if err != nil {
			t := p.cur()
			return nil, &SyntaxError{Line: t.line, Col: t.col, Msg: err.Error()}
		}
		p.pos++
		return n, nil

	case p.accept("("):
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return p.parseSelects(e)

	case p.accept("{"):
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		// Replication: {N{x}}
		if p.accept("{") {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("}"); err != nil {
				return nil, err
			}
			if err := p.expect("}"); err != nil {
				return nil, err
			}
			return &Repl{Count: first, X: x}, nil
		}
		parts := []Expr{first}
		for p.accept(",") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			parts = append(parts, e)
		}
		if err := p.expect("}"); err != nil {
			return nil, err
		}
		return &Concat{Parts: parts}, nil

	default:
		return nil, p.errorf("expected expression, found %s", p.cur())
	}
}

// parseSelects parses trailing [i] or [msb:lsb] selects.
func (p *parser) parseSelects(e Expr) (Expr, error) {
	for p.accept("[") {
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.accept(":") {
			lsb, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			e = &Slice{X: e, Msb: first, Lsb: lsb}
			continue
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		e = &Index{X: e, At: first}
	}
	return e, nil
}

// parseNumber decodes a numeric literal token: 42, 8'hFF, 4'b1010, 16'd9.
// x/z digits are treated as 0 (two-valued subset).
func parseNumber(text string) (*Number, error) {
	tick := strings.IndexByte(text, '\'')
	if tick < 0 {
		v, err := strconv.ParseUint(text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", text)
		}
		return &Number{Value: v}, nil
	}
	width := 32
	if tick > 0 {
		w, err := strconv.Atoi(text[:tick])
		if err != nil || w <= 0 || w > 64 {
			return nil, fmt.Errorf("bad width in %q", text)
		}
		width = w
	}
	if tick+1 >= len(text) {
		return nil, fmt.Errorf("truncated literal %q", text)
	}
	base := 10
	switch text[tick+1] {
	case 'b', 'B':
		base = 2
	case 'o', 'O':
		base = 8
	case 'd', 'D':
		base = 10
	case 'h', 'H':
		base = 16
	}
	digits := strings.Map(func(r rune) rune {
		switch r {
		case 'x', 'X', 'z', 'Z':
			return '0'
		case '_':
			return -1
		}
		return r
	}, text[tick+2:])
	v, err := strconv.ParseUint(digits, base, 64)
	if err != nil {
		return nil, fmt.Errorf("bad digits in %q", text)
	}
	if width < 64 {
		v &= (uint64(1) << uint(width)) - 1
	}
	return &Number{Value: v, Width: width}, nil
}
