package rtl

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, src string) []*Module {
	t.Helper()
	mods, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return mods
}

func TestParseEmptyModule(t *testing.T) {
	mods := mustParse(t, "module m(); endmodule")
	if len(mods) != 1 || mods[0].Name != "m" {
		t.Fatalf("got %+v", mods)
	}
}

func TestParsePorts(t *testing.T) {
	mods := mustParse(t, `
		module m(input clk, input [7:0] a, b, output reg [15:0] q, inout io);
		endmodule`)
	m := mods[0]
	if len(m.Ports) != 5 {
		t.Fatalf("ports = %d, want 5", len(m.Ports))
	}
	if m.Ports[0].Name != "clk" || m.Ports[0].Dir != Input || !m.Ports[0].Range.IsScalar() {
		t.Errorf("clk port parsed wrong: %+v", m.Ports[0])
	}
	if m.Ports[2].Name != "b" || m.Ports[2].Dir != Input {
		t.Errorf("grouped port b parsed wrong: %+v", m.Ports[2])
	}
	if !m.Ports[3].IsReg || m.Ports[3].Dir != Output {
		t.Errorf("output reg q parsed wrong: %+v", m.Ports[3])
	}
	if m.Ports[4].Dir != Inout {
		t.Errorf("inout io parsed wrong: %+v", m.Ports[4])
	}
}

func TestParseParameters(t *testing.T) {
	mods := mustParse(t, `
		module m #(parameter W = 8, parameter D = W*2) (input [W-1:0] a);
		  localparam HALF = W / 2;
		  parameter EXTRA = 3;
		endmodule`)
	m := mods[0]
	if len(m.Params) != 4 {
		t.Fatalf("params = %d, want 4", len(m.Params))
	}
	if m.Params[2].Name != "HALF" || !m.Params[2].IsLocal {
		t.Errorf("localparam parsed wrong: %+v", m.Params[2])
	}
}

func TestParseAssignAndExprs(t *testing.T) {
	mods := mustParse(t, `
		module m(input [7:0] a, input [7:0] b, output [8:0] y, output z);
		  wire [7:0] t;
		  assign t = a & ~b | 8'hF0 ^ (a << 2);
		  assign y = {1'b0, a} + {1'b0, b};
		  assign z = (a == b) ? &t : a[3];
		endmodule`)
	m := mods[0]
	if len(m.Assigns) != 3 {
		t.Fatalf("assigns = %d, want 3", len(m.Assigns))
	}
	if _, ok := m.Assigns[2].RHS.(*Cond); !ok {
		t.Errorf("third assign RHS is %T, want *Cond", m.Assigns[2].RHS)
	}
}

func TestParseAlways(t *testing.T) {
	mods := mustParse(t, `
		module m(input clk, input rst, input en, input [7:0] d, output reg [7:0] q);
		  always @(posedge clk) begin
		    if (rst) q <= 8'd0;
		    else if (en) q <= d;
		  end
		endmodule`)
	m := mods[0]
	if len(m.Alwayses) != 1 {
		t.Fatalf("alwayses = %d", len(m.Alwayses))
	}
	a := m.Alwayses[0]
	if a.Clock != "clk" || a.Negedge {
		t.Errorf("clock parsed wrong: %+v", a)
	}
	if len(a.Body) != 2 {
		t.Fatalf("body = %d seq assigns, want 2", len(a.Body))
	}
	if len(a.Body[0].Guard) != 1 {
		t.Errorf("first assign guard = %v", a.Body[0].Guard)
	}
	if len(a.Body[1].Guard) != 2 {
		t.Errorf("else-if assign guards = %d, want 2", len(a.Body[1].Guard))
	}
}

func TestParseInstances(t *testing.T) {
	mods := mustParse(t, `
		module sub(input a, output y); assign y = a; endmodule
		module top(input x, output z);
		  wire w;
		  sub u0 (.a(x), .y(w));
		  sub u1 (w, z);
		  sub #(.FOO(3)) u2 (.a(w), .y());
		endmodule`)
	top := mods[1]
	if len(top.Instances) != 3 {
		t.Fatalf("instances = %d", len(top.Instances))
	}
	if top.Instances[0].Conns["a"] == nil {
		t.Error("named connection .a missing")
	}
	if _, ok := top.Instances[1].Conns["$pos0"]; !ok {
		t.Error("positional connection not recorded")
	}
	if top.Instances[2].Params["FOO"] == nil {
		t.Error("parameter override missing")
	}
	if v, present := top.Instances[2].Conns["y"]; !present || v != nil {
		t.Error("explicitly unconnected port must be present with nil expr")
	}
}

func TestParseComments(t *testing.T) {
	mods := mustParse(t, `
		// line comment
		module m(input a /* inline */, output y);
		  /* block
		     comment */
		  assign y = a;
		endmodule`)
	if len(mods[0].Assigns) != 1 {
		t.Fatal("comment handling broke parsing")
	}
}

func TestParseNumbers(t *testing.T) {
	cases := map[string]struct {
		val   uint64
		width int
	}{
		"42":       {42, 0},
		"8'hFF":    {255, 8},
		"4'b1010":  {10, 4},
		"16'd9":    {9, 16},
		"8'o17":    {15, 8},
		"4'b1x0z":  {8, 4}, // x/z read as 0
		"12'h_F_F": {255, 12},
	}
	for text, want := range cases {
		n, err := parseNumber(text)
		if err != nil {
			t.Errorf("parseNumber(%q): %v", text, err)
			continue
		}
		if n.Value != want.val || n.Width != want.width {
			t.Errorf("parseNumber(%q) = %d/%d, want %d/%d", text, n.Value, n.Width, want.val, want.width)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"module",                               // truncated
		"module m( endmodule",                  // bad port list
		"module m(); assign = 1; endmodule",    // missing lhs
		"module m(); wire; endmodule",          // missing net name
		"module m(); always @(clk) endmodule",  // missing edge
		"module m(); sub u0 (.a(x); endmodule", // unbalanced
		"module m(); assign y = 8'q3; endmodule",
		"module m(); /* unterminated",
		"module m(input a, input a2); assign y = 4'b; endmodule", // no digits
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := Parse("module m();\n  assign y = ;\nendmodule")
	if err == nil {
		t.Fatal("want error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Line != 2 {
		t.Errorf("error line = %d, want 2", se.Line)
	}
	if !strings.Contains(se.Error(), "line 2") {
		t.Errorf("error message %q lacks position", se.Error())
	}
}

func TestExprStringRoundTrip(t *testing.T) {
	src := `module m(input [7:0] a, output [7:0] y);
	  assign y = (a + 8'h01) & {2{a[3:0]}};
	endmodule`
	mods := mustParse(t, src)
	rendered := mods[0].Assigns[0].RHS.String()
	// Re-parse the rendered expression inside a wrapper module.
	re := "module m(input [7:0] a, output [7:0] y); assign y = " + rendered + "; endmodule"
	mods2 := mustParse(t, re)
	if mods2[0].Assigns[0].RHS.String() != rendered {
		t.Errorf("expression rendering is not stable: %q vs %q",
			rendered, mods2[0].Assigns[0].RHS.String())
	}
}

func TestEscapedIdentifier(t *testing.T) {
	mods := mustParse(t, "module m(input \\weird.name , output y); assign y = \\weird.name ; endmodule")
	if mods[0].Ports[0].Name != "weird.name" {
		t.Errorf("escaped identifier = %q", mods[0].Ports[0].Name)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	mods := mustParse(t, `module m(input [7:0] a, b, c, output [7:0] y);
	  assign y = a + b * c;
	endmodule`)
	bin, ok := mods[0].Assigns[0].RHS.(*Binary)
	if !ok || bin.Op != "+" {
		t.Fatalf("top op = %v", mods[0].Assigns[0].RHS)
	}
	if r, ok := bin.R.(*Binary); !ok || r.Op != "*" {
		t.Errorf("* must bind tighter than +: %v", bin.R)
	}
}

// Property: rendering a random-ish expression tree and re-parsing it is
// stable (String is a fixpoint after one round).
func TestQuickExprStringStable(t *testing.T) {
	ops := []string{"+", "-", "*", "&", "|", "^", "<<", ">>", "==", "<"}
	var build func(r *rand.Rand, depth int) Expr
	build = func(r *rand.Rand, depth int) Expr {
		if depth <= 0 || r.Intn(3) == 0 {
			if r.Intn(2) == 0 {
				return &Ident{Name: string(rune('a' + r.Intn(4)))}
			}
			return &Number{Value: uint64(r.Intn(256)), Width: 8}
		}
		switch r.Intn(6) {
		case 0:
			return &Unary{Op: "~", X: build(r, depth-1)}
		case 1:
			return &Cond{If: build(r, depth-1), Then: build(r, depth-1), Else: build(r, depth-1)}
		case 2:
			return &Concat{Parts: []Expr{build(r, depth-1), build(r, depth-1)}}
		case 3:
			return &Index{X: &Ident{Name: "a"}, At: &Number{Value: uint64(r.Intn(8))}}
		case 4:
			return &Slice{X: &Ident{Name: "b"}, Msb: &Number{Value: 7}, Lsb: &Number{Value: 2}}
		default:
			return &Binary{Op: ops[r.Intn(len(ops))], L: build(r, depth-1), R: build(r, depth-1)}
		}
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := build(r, 4)
		src := "module m(input [7:0] a, input [7:0] b, input [7:0] c, input [7:0] d, output [63:0] y); assign y = " + e.String() + "; endmodule"
		mods, err := Parse(src)
		if err != nil {
			t.Logf("parse of %q: %v", e.String(), err)
			return false
		}
		rendered := mods[0].Assigns[0].RHS.String()
		mods2, err := Parse("module m(input [7:0] a, input [7:0] b, input [7:0] c, input [7:0] d, output [63:0] y); assign y = " + rendered + "; endmodule")
		if err != nil {
			return false
		}
		return mods2[0].Assigns[0].RHS.String() == rendered
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// genManyModules emits n small modules with varied bodies so the parallel
// splitter has real fan-out to chew on.
func genManyModules(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, `
module m%d #(parameter W = %d) (input clk, input [W-1:0] a, output reg [W-1:0] q);
  wire [W-1:0] t;
  assign t = a ^ {W{1'b1}};
  always @(posedge clk) q <= t + %d'd%d;
endmodule
`, i, 4+i%8, 4+i%8, i%7)
	}
	return sb.String()
}

func TestParseParallelMatchesSequential(t *testing.T) {
	src := genManyModules(17)
	seq, err := ParseParallel(src, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8, 32} {
		par, err := ParseParallel(src, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d: parallel parse differs from sequential", workers)
		}
	}
}

func TestParseParallelErrorParity(t *testing.T) {
	// Syntax errors inside two modules: the parallel parse must report the
	// same (earliest-module) error the sequential scan stops at.
	src := `
module ok(input a, output y); assign y = a; endmodule
module bad1(input a, output y); assign y = ; endmodule
module bad2(input a, output y); assign = a; endmodule`
	_, seqErr := ParseParallel(src, 1)
	if seqErr == nil {
		t.Fatal("expected error")
	}
	_, parErr := ParseParallel(src, 8)
	if parErr == nil || parErr.Error() != seqErr.Error() {
		t.Errorf("parallel error = %v, sequential = %v", parErr, seqErr)
	}
}

func TestParseParallelMalformedTopLevelFallsBack(t *testing.T) {
	// A stray top-level token defeats the splitter; both paths must agree.
	src := `
module a(); endmodule
garbage
module b(); endmodule`
	_, seqErr := ParseParallel(src, 1)
	_, parErr := ParseParallel(src, 8)
	if seqErr == nil || parErr == nil || parErr.Error() != seqErr.Error() {
		t.Errorf("parallel error = %v, sequential = %v", parErr, seqErr)
	}
	// Same for a module missing its endmodule.
	src = "module a(); endmodule\nmodule b(input x);"
	_, seqErr = ParseParallel(src, 1)
	_, parErr = ParseParallel(src, 8)
	if seqErr == nil || parErr == nil || parErr.Error() != seqErr.Error() {
		t.Errorf("truncated: parallel error = %v, sequential = %v", parErr, seqErr)
	}
}
