package rtl

import (
	"errors"
	"fmt"
)

// ErrNotSimulable is returned when a design contains blackbox primitives
// without behavioural models, which the two-valued simulator cannot execute.
var ErrNotSimulable = errors.New("rtl: design contains blackbox primitives and cannot be simulated")

// ErrCombLoop is returned when continuous assignments fail to reach a
// fixpoint, indicating a combinational loop.
var ErrCombLoop = errors.New("rtl: combinational loop (assigns did not settle)")

// Simulator executes a flattened design with two-valued semantics. All nets
// are at most 64 bits wide. Continuous assignments are settled by iterating
// to a fixpoint; clocked always blocks apply nonblocking assignments on
// Tick.
type Simulator struct {
	flat    *Module
	widths  map[string]int
	vals    map[string]uint64
	inputs  map[string]bool
	outputs []string
}

// NewSimulator flattens (top, overrides) and prepares a simulator.
func NewSimulator(d *Design, top string, overrides map[string]uint64) (*Simulator, error) {
	flat, err := d.Flatten(top, overrides)
	if err != nil {
		return nil, err
	}
	return NewFlatSimulator(flat)
}

// NewFlatSimulator prepares a simulator for an already-flattened module.
func NewFlatSimulator(flat *Module) (*Simulator, error) {
	if len(flat.Instances) > 0 {
		return nil, fmt.Errorf("%w: e.g. %s", ErrNotSimulable, flat.Instances[0].ModuleName)
	}
	s := &Simulator{
		flat:   flat,
		widths: map[string]int{},
		vals:   map[string]uint64{},
		inputs: map[string]bool{},
	}
	for _, p := range flat.Ports {
		w, err := rangeWidth(p.Range, nil)
		if err != nil {
			return nil, err
		}
		s.widths[p.Name] = w
		if p.Dir == Input {
			s.inputs[p.Name] = true
		} else {
			s.outputs = append(s.outputs, p.Name)
		}
	}
	for _, n := range flat.Nets {
		w, err := rangeWidth(n.Range, nil)
		if err != nil {
			return nil, err
		}
		s.widths[n.Name] = w
	}
	return s, nil
}

// InputPorts returns the names of input ports in declaration order.
func (s *Simulator) InputPorts() []string {
	var out []string
	for _, p := range s.flat.Ports {
		if p.Dir == Input {
			out = append(out, p.Name)
		}
	}
	return out
}

// OutputPorts returns the names of output ports in declaration order.
func (s *Simulator) OutputPorts() []string { return append([]string{}, s.outputs...) }

// Width returns the width of a net or port.
func (s *Simulator) Width(name string) (int, bool) {
	w, ok := s.widths[name]
	return w, ok
}

func mask(v uint64, w int) uint64 {
	if w >= 64 {
		return v
	}
	return v & (uint64(1)<<uint(w) - 1)
}

// SetInput drives an input port. The value is masked to the port width.
func (s *Simulator) SetInput(name string, v uint64) error {
	if !s.inputs[name] {
		return fmt.Errorf("rtl: %q is not an input port", name)
	}
	s.vals[name] = mask(v, s.widths[name])
	return nil
}

// Peek reads the settled value of any net or port.
func (s *Simulator) Peek(name string) (uint64, error) {
	w, ok := s.widths[name]
	if !ok {
		return 0, fmt.Errorf("rtl: unknown net %q", name)
	}
	return mask(s.vals[name], w), nil
}

// eval evaluates an expression against current values.
func (s *Simulator) eval(e Expr) (uint64, error) {
	switch v := e.(type) {
	case *Ident:
		w, ok := s.widths[v.Name]
		if !ok {
			return 0, fmt.Errorf("rtl: eval: unknown net %q", v.Name)
		}
		return mask(s.vals[v.Name], w), nil
	case *Number:
		if v.Width > 0 {
			return mask(v.Value, v.Width), nil
		}
		return v.Value, nil
	case *Unary:
		x, err := s.eval(v.X)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "~":
			w, err := s.exprWidth(v.X)
			if err != nil {
				return 0, err
			}
			return mask(^x, w), nil
		case "-":
			w, err := s.exprWidth(v.X)
			if err != nil {
				return 0, err
			}
			return mask(-x, w), nil
		case "!":
			return b2u(x == 0), nil
		case "&":
			w, err := s.exprWidth(v.X)
			if err != nil {
				return 0, err
			}
			return b2u(x == mask(^uint64(0), w)), nil
		case "|":
			return b2u(x != 0), nil
		case "^":
			return uint64(popcount(x) & 1), nil
		}
		return 0, fmt.Errorf("rtl: eval: unknown unary %q", v.Op)
	case *Binary:
		l, err := s.eval(v.L)
		if err != nil {
			return 0, err
		}
		r, err := s.eval(v.R)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case "+":
			return l + r, nil
		case "-":
			return l - r, nil
		case "*":
			return l * r, nil
		case "/":
			if r == 0 {
				return 0, nil // Verilog x/0 is X; two-valued subset yields 0
			}
			return l / r, nil
		case "%":
			if r == 0 {
				return 0, nil
			}
			return l % r, nil
		case "<<":
			if r >= 64 {
				return 0, nil
			}
			return l << r, nil
		case ">>":
			if r >= 64 {
				return 0, nil
			}
			return l >> r, nil
		case "&":
			return l & r, nil
		case "|":
			return l | r, nil
		case "^":
			return l ^ r, nil
		case "==":
			return b2u(l == r), nil
		case "!=":
			return b2u(l != r), nil
		case "<":
			return b2u(l < r), nil
		case ">":
			return b2u(l > r), nil
		case "<=":
			return b2u(l <= r), nil
		case ">=":
			return b2u(l >= r), nil
		case "&&":
			return b2u(l != 0 && r != 0), nil
		case "||":
			return b2u(l != 0 || r != 0), nil
		}
		return 0, fmt.Errorf("rtl: eval: unknown binary %q", v.Op)
	case *Cond:
		c, err := s.eval(v.If)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return s.eval(v.Then)
		}
		return s.eval(v.Else)
	case *Index:
		x, err := s.eval(v.X)
		if err != nil {
			return 0, err
		}
		at, err := s.eval(v.At)
		if err != nil {
			return 0, err
		}
		if at >= 64 {
			return 0, nil
		}
		return x >> at & 1, nil
	case *Slice:
		x, err := s.eval(v.X)
		if err != nil {
			return 0, err
		}
		msb, err := s.eval(v.Msb)
		if err != nil {
			return 0, err
		}
		lsb, err := s.eval(v.Lsb)
		if err != nil {
			return 0, err
		}
		if lsb > msb || msb >= 64 {
			return 0, fmt.Errorf("rtl: eval: bad slice [%d:%d]", msb, lsb)
		}
		return mask(x>>lsb, int(msb-lsb)+1), nil
	case *Concat:
		var out uint64
		for _, p := range v.Parts {
			w, err := s.exprWidth(p)
			if err != nil {
				return 0, err
			}
			pv, err := s.eval(p)
			if err != nil {
				return 0, err
			}
			out = out<<uint(w) | mask(pv, w)
		}
		return out, nil
	case *Repl:
		n, err := s.eval(v.Count)
		if err != nil {
			return 0, err
		}
		w, err := s.exprWidth(v.X)
		if err != nil {
			return 0, err
		}
		xv, err := s.eval(v.X)
		if err != nil {
			return 0, err
		}
		xv = mask(xv, w)
		var out uint64
		for i := uint64(0); i < n; i++ {
			out = out<<uint(w) | xv
		}
		return out, nil
	}
	return 0, fmt.Errorf("rtl: eval: unknown node %T", e)
}

func (s *Simulator) exprWidth(e Expr) (int, error) {
	return InferWidth(e, s.widths, nil)
}

func popcount(v uint64) int {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}

// store writes value into an lvalue expression.
func (s *Simulator) store(lhs Expr, value uint64) error {
	switch v := lhs.(type) {
	case *Ident:
		w, ok := s.widths[v.Name]
		if !ok {
			return fmt.Errorf("rtl: store: unknown net %q", v.Name)
		}
		s.vals[v.Name] = mask(value, w)
		return nil
	case *Index:
		id, ok := v.X.(*Ident)
		if !ok {
			return fmt.Errorf("rtl: store: unsupported lvalue %s", lhs)
		}
		at, err := s.eval(v.At)
		if err != nil {
			return err
		}
		if at >= 64 {
			return fmt.Errorf("rtl: store: index %d out of range", at)
		}
		old := s.vals[id.Name]
		bit := uint64(1) << at
		if value&1 != 0 {
			s.vals[id.Name] = old | bit
		} else {
			s.vals[id.Name] = old &^ bit
		}
		s.vals[id.Name] = mask(s.vals[id.Name], s.widths[id.Name])
		return nil
	case *Slice:
		id, ok := v.X.(*Ident)
		if !ok {
			return fmt.Errorf("rtl: store: unsupported lvalue %s", lhs)
		}
		msb, err := s.eval(v.Msb)
		if err != nil {
			return err
		}
		lsb, err := s.eval(v.Lsb)
		if err != nil {
			return err
		}
		if lsb > msb || msb >= 64 {
			return fmt.Errorf("rtl: store: bad slice [%d:%d]", msb, lsb)
		}
		w := int(msb-lsb) + 1
		old := s.vals[id.Name]
		fieldMask := mask(^uint64(0), w) << lsb
		s.vals[id.Name] = mask(old&^fieldMask|(mask(value, w)<<lsb), s.widths[id.Name])
		return nil
	case *Concat:
		// MSB-first split.
		totalW := 0
		partW := make([]int, len(v.Parts))
		for i, p := range v.Parts {
			w, err := s.exprWidth(p)
			if err != nil {
				return err
			}
			partW[i] = w
			totalW += w
		}
		shift := totalW
		for i, p := range v.Parts {
			shift -= partW[i]
			if err := s.store(p, mask(value>>uint(shift), partW[i])); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("rtl: store: unsupported lvalue %T", lhs)
}

// maxSettleIters bounds fixpoint iteration; a correct acyclic design settles
// in at most #assigns passes.
const maxSettleIters = 10000

// Settle propagates continuous assignments to a fixpoint.
func (s *Simulator) Settle() error {
	n := len(s.flat.Assigns)
	if n == 0 {
		return nil
	}
	limit := n + 2
	if limit > maxSettleIters {
		limit = maxSettleIters
	}
	for iter := 0; iter < limit; iter++ {
		changed := false
		for i := range s.flat.Assigns {
			a := &s.flat.Assigns[i]
			v, err := s.eval(a.RHS)
			if err != nil {
				return err
			}
			before := s.snapshotLHS(a.LHS)
			if err := s.store(a.LHS, v); err != nil {
				return err
			}
			if s.snapshotLHS(a.LHS) != before {
				changed = true
			}
		}
		if !changed {
			return nil
		}
	}
	return ErrCombLoop
}

// snapshotLHS reads the current value behind an lvalue for change detection.
func (s *Simulator) snapshotLHS(lhs Expr) uint64 {
	v, err := s.eval(lhs)
	if err != nil {
		return 0
	}
	return v
}

// Tick applies one clock edge to every always block (nonblocking semantics:
// all right-hand sides are evaluated against pre-edge state), then settles
// combinational logic. Call Settle first if inputs changed since the last
// Tick.
func (s *Simulator) Tick() error {
	if err := s.Settle(); err != nil {
		return err
	}
	type update struct {
		lhs Expr
		val uint64
	}
	var updates []update
	for ai := range s.flat.Alwayses {
		alw := &s.flat.Alwayses[ai]
		for i := range alw.Body {
			sa := &alw.Body[i]
			take := true
			for _, g := range sa.Guard {
				gv, err := s.eval(g)
				if err != nil {
					return err
				}
				if gv == 0 {
					take = false
					break
				}
			}
			if !take {
				continue
			}
			v, err := s.eval(sa.RHS)
			if err != nil {
				return err
			}
			updates = append(updates, update{sa.LHS, v})
		}
	}
	for _, u := range updates {
		if err := s.store(u.lhs, u.val); err != nil {
			return err
		}
	}
	return s.Settle()
}

// Reset zeroes all state.
func (s *Simulator) Reset() {
	s.vals = map[string]uint64{}
}
