package rtl

import "testing"

// Exercises the remaining evaluator operators through RTL programs.
func TestSimOperatorsWide(t *testing.T) {
	s := newSim(t, `
		module ops(input [7:0] a, input [7:0] b,
		           output [7:0] o_div, output [7:0] o_mod, output [7:0] o_sub,
		           output o_ne, output o_le, output o_ge, output o_land, output o_lor,
		           output o_not, output o_redand, output o_redor,
		           output [7:0] o_neg, output [15:0] o_repl, output [7:0] o_shl,
		           output [7:0] o_condx, output o_bit);
		  assign o_div = a / b;
		  assign o_mod = a % b;
		  assign o_sub = a - b;
		  assign o_ne = a != b;
		  assign o_le = a <= b;
		  assign o_ge = a >= b;
		  assign o_land = a[0] && b[0];
		  assign o_lor = a[0] || b[0];
		  assign o_not = !a;
		  assign o_redand = &a;
		  assign o_redor = |a;
		  assign o_neg = -a;
		  assign o_repl = {2{a}};
		  assign o_shl = a << b[1:0];
		  assign o_condx = b[0] ? a : ~a;
		  assign o_bit = a[b[2:0]];
		endmodule`, "ops")
	s.SetInput("a", 0xF0)
	s.SetInput("b", 0x05)
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	checks := map[string]uint64{
		"o_div": 0x30, "o_mod": 0, "o_sub": 0xEB,
		"o_ne": 1, "o_le": 0, "o_ge": 1,
		"o_land": 0, "o_lor": 1, "o_not": 0,
		"o_redand": 0, "o_redor": 1,
		"o_neg": 0x10, "o_repl": 0xF0F0, "o_shl": 0xE0,
		"o_condx": 0xF0, "o_bit": 1, // bit 5 of 0xF0
	}
	for net, want := range checks {
		if v, _ := s.Peek(net); v != want {
			t.Errorf("%s = %#x, want %#x", net, v, want)
		}
	}
}

func TestSimDivModByZero(t *testing.T) {
	s := newSim(t, `
		module m(input [7:0] a, output [7:0] d, output [7:0] r);
		  assign d = a / 8'd0;
		  assign r = a % 8'd0;
		endmodule`, "m")
	s.SetInput("a", 42)
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Peek("d"); v != 0 {
		t.Errorf("x/0 = %d, want 0 (two-valued subset)", v)
	}
	if v, _ := s.Peek("r"); v != 0 {
		t.Errorf("x%%0 = %d, want 0", v)
	}
}

func TestSimReductionAllOnes(t *testing.T) {
	s := newSim(t, `
		module m(input [3:0] a, output y); assign y = &a; endmodule`, "m")
	s.SetInput("a", 0xF)
	s.Settle()
	if v, _ := s.Peek("y"); v != 1 {
		t.Errorf("&4'b1111 = %d, want 1", v)
	}
}

func TestSimXorReduceParity(t *testing.T) {
	s := newSim(t, `module m(input [7:0] a, output y); assign y = ^a; endmodule`, "m")
	for _, c := range []struct {
		in   uint64
		want uint64
	}{{0b1011, 1}, {0b11, 0}, {0, 0}, {0xFF, 0}} {
		s.SetInput("a", c.in)
		s.Settle()
		if v, _ := s.Peek("y"); v != c.want {
			t.Errorf("^%#b = %d, want %d", c.in, v, c.want)
		}
	}
}

func TestSimStoreConcatWide(t *testing.T) {
	s := newSim(t, `
		module m(input [11:0] a, output [3:0] hi, output [3:0] mid, output [3:0] lo);
		  assign {hi, mid, lo} = a;
		endmodule`, "m")
	s.SetInput("a", 0xABC)
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	hi, _ := s.Peek("hi")
	mid, _ := s.Peek("mid")
	lo, _ := s.Peek("lo")
	if hi != 0xA || mid != 0xB || lo != 0xC {
		t.Errorf("{hi,mid,lo} = %x,%x,%x", hi, mid, lo)
	}
}

func TestSimDynamicIndexStore(t *testing.T) {
	s := newSim(t, `
		module m(input clk, input [2:0] sel, input b, output reg [7:0] q);
		  always @(posedge clk) q[sel] <= b;
		endmodule`, "m")
	s.SetInput("sel", 3)
	s.SetInput("b", 1)
	s.Tick()
	s.SetInput("sel", 6)
	s.Tick()
	if v, _ := s.Peek("q"); v != 0b01001000 {
		t.Errorf("q = %#b, want 0b01001000", v)
	}
	// Clearing a bit.
	s.SetInput("sel", 3)
	s.SetInput("b", 0)
	s.Tick()
	if v, _ := s.Peek("q"); v != 0b01000000 {
		t.Errorf("q = %#b after clear", v)
	}
}

func TestGraphString(t *testing.T) {
	d, err := ParseDesign(chainDesign, "top")
	if err != nil {
		t.Fatal(err)
	}
	g, err := d.BasicGraph(elab(t, d, "top"))
	if err != nil {
		t.Fatal(err)
	}
	s := g.String()
	if len(s) == 0 || g.Bandwidth(0, 99) != 0 {
		t.Error("graph debug output or bandwidth lookup broken")
	}
}

// estimateExpr paths: variable shifts, replication, conditionals, dynamic
// index all contribute LUTs.
func TestEstimateOperatorPaths(t *testing.T) {
	d, err := ParseDesign(`
		module m(input [15:0] a, input [3:0] s, input c, output [31:0] y);
		  wire [15:0] t1;
		  wire [15:0] t2;
		  wire [31:0] t3;
		  wire t4;
		  assign t1 = a >> s;
		  assign t2 = c ? a : ~a;
		  assign t3 = {2{t1}} | {t2, 16'd0};
		  assign t4 = a[s] && (a < t1) || !(a >= t2);
		  assign y = t3 ^ {31'd0, t4};
		endmodule`, "m")
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.EstimateResources(elab(t, d, "m"))
	if err != nil {
		t.Fatal(err)
	}
	// Barrel shifter (2*16) + mux (16) + inverter + compares + glue.
	if res.LUTs < 60 {
		t.Errorf("LUTs = %d, want >= 60 for shifter+mux+compares", res.LUTs)
	}
	if res.DSPs != 0 || res.DFFs != 0 {
		t.Errorf("unexpected DSP/DFF: %v", res)
	}
}
