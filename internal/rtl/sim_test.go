package rtl

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func newSim(t *testing.T, src, top string) *Simulator {
	t.Helper()
	d, err := ParseDesign(src, top)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSimulator(d, top, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSimCombinational(t *testing.T) {
	s := newSim(t, adderDesign, "top")
	if err := s.SetInput("x1", 200); err != nil {
		t.Fatal(err)
	}
	if err := s.SetInput("x2", 100); err != nil {
		t.Fatal(err)
	}
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	got, err := s.Peek("s")
	if err != nil {
		t.Fatal(err)
	}
	if got != 300 {
		t.Errorf("200+100 = %d, want 300", got)
	}
}

func TestSimRegister(t *testing.T) {
	s := newSim(t, `
		module reg8(input clk, input [7:0] d, output reg [7:0] q);
		  always @(posedge clk) q <= d;
		endmodule`, "reg8")
	s.SetInput("d", 0x5A)
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Peek("q"); v != 0 {
		t.Errorf("register loaded before clock edge: %x", v)
	}
	if err := s.Tick(); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Peek("q"); v != 0x5A {
		t.Errorf("q after tick = %x, want 5a", v)
	}
}

func TestSimGuardedRegister(t *testing.T) {
	s := newSim(t, `
		module m(input clk, input rst, input en, input [3:0] d, output reg [3:0] q);
		  always @(posedge clk) begin
		    if (rst) q <= 4'd0;
		    else if (en) q <= d;
		  end
		endmodule`, "m")
	s.SetInput("d", 7)
	s.SetInput("en", 1)
	s.SetInput("rst", 0)
	s.Tick()
	if v, _ := s.Peek("q"); v != 7 {
		t.Fatalf("enabled load failed: %d", v)
	}
	s.SetInput("en", 0)
	s.SetInput("d", 3)
	s.Tick()
	if v, _ := s.Peek("q"); v != 7 {
		t.Errorf("disabled load overwrote: %d", v)
	}
	s.SetInput("rst", 1)
	s.Tick()
	if v, _ := s.Peek("q"); v != 0 {
		t.Errorf("reset failed: %d", v)
	}
}

func TestSimHierarchyPipeline(t *testing.T) {
	// Two chained registers through hierarchy: data appears after 2 ticks.
	s := newSim(t, `
		module stage(input clk, input [7:0] d, output reg [7:0] q);
		  always @(posedge clk) q <= d;
		endmodule
		module pipe(input clk, input [7:0] in, output [7:0] out);
		  wire [7:0] mid;
		  stage s0 (.clk(clk), .d(in), .q(mid));
		  stage s1 (.clk(clk), .d(mid), .q(out));
		endmodule`, "pipe")
	s.SetInput("in", 42)
	s.Tick()
	if v, _ := s.Peek("out"); v != 0 {
		t.Errorf("pipeline output after 1 tick = %d, want 0", v)
	}
	s.Tick()
	if v, _ := s.Peek("out"); v != 42 {
		t.Errorf("pipeline output after 2 ticks = %d, want 42", v)
	}
}

func TestSimSliceAndConcatLHS(t *testing.T) {
	s := newSim(t, `
		module m(input [7:0] a, output [7:0] y, output hi, output lo);
		  assign y[3:0] = a[7:4];
		  assign y[7:4] = a[3:0];
		  assign {hi, lo} = {a[7], a[0]};
		endmodule`, "m")
	s.SetInput("a", 0xA5)
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Peek("y"); v != 0x5A {
		t.Errorf("nibble swap = %x, want 5a", v)
	}
	if hi, _ := s.Peek("hi"); hi != 1 {
		t.Errorf("hi = %d", hi)
	}
	if lo, _ := s.Peek("lo"); lo != 1 {
		t.Errorf("lo = %d", lo)
	}
}

func TestSimOperators(t *testing.T) {
	s := newSim(t, `
		module ops(input [7:0] a, input [7:0] b, output [7:0] o_and, output [7:0] o_mul,
		           output o_eq, output o_lt, output o_red, output [7:0] o_shift, output [7:0] o_cond);
		  assign o_and = a & b;
		  assign o_mul = a * b;
		  assign o_eq = a == b;
		  assign o_lt = a < b;
		  assign o_red = ^a;
		  assign o_shift = a >> b[2:0];
		  assign o_cond = (a > b) ? a : b;
		endmodule`, "ops")
	s.SetInput("a", 0x0F)
	s.SetInput("b", 0x03)
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	checks := map[string]uint64{
		"o_and": 0x03, "o_mul": 0x2D, "o_eq": 0, "o_lt": 0,
		"o_red": 0, "o_shift": 0x01, "o_cond": 0x0F,
	}
	for net, want := range checks {
		if v, _ := s.Peek(net); v != want {
			t.Errorf("%s = %#x, want %#x", net, v, want)
		}
	}
}

func TestSimCombLoopDetected(t *testing.T) {
	s := newSim(t, `
		module loop(input a, output x);
		  wire y;
		  assign x = y ^ a;
		  assign y = ~x;
		endmodule`, "loop")
	s.SetInput("a", 0)
	if err := s.Settle(); !errors.Is(err, ErrCombLoop) {
		t.Errorf("Settle = %v, want ErrCombLoop", err)
	}
}

func TestSimBlackboxRejected(t *testing.T) {
	d, err := ParseDesign(`
		module m(input a, output y);
		  DSP48E2 u (.A(a), .P(y));
		endmodule`, "m")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSimulator(d, "m", nil); !errors.Is(err, ErrNotSimulable) {
		t.Errorf("NewSimulator = %v, want ErrNotSimulable", err)
	}
}

func TestSimUnconnectedInputTiedLow(t *testing.T) {
	s := newSim(t, `
		module inv(input a, output y); assign y = ~a; endmodule
		module m(output z);
		  inv u (.y(z));
		endmodule`, "m")
	if err := s.Settle(); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Peek("z"); v != 1 {
		t.Errorf("inverter of tied-low input = %d, want 1", v)
	}
}

func TestSimInputValidation(t *testing.T) {
	s := newSim(t, adderDesign, "top")
	if err := s.SetInput("s", 1); err == nil {
		t.Error("driving an output must error")
	}
	if err := s.SetInput("nosuch", 1); err == nil {
		t.Error("driving unknown net must error")
	}
	if _, err := s.Peek("nosuch"); err == nil {
		t.Error("peeking unknown net must error")
	}
}

func TestSimPortLists(t *testing.T) {
	s := newSim(t, adderDesign, "top")
	in, out := s.InputPorts(), s.OutputPorts()
	if len(in) != 2 || in[0] != "x1" || in[1] != "x2" {
		t.Errorf("InputPorts = %v", in)
	}
	if len(out) != 1 || out[0] != "s" {
		t.Errorf("OutputPorts = %v", out)
	}
	if w, ok := s.Width("x1"); !ok || w != 8 {
		t.Errorf("Width(x1) = %d,%v", w, ok)
	}
}

func TestSimParameterized(t *testing.T) {
	d, err := ParseDesign(`
		module counter #(parameter W = 4) (input clk, input rst, output reg [W-1:0] q);
		  always @(posedge clk) begin
		    if (rst) q <= 0;
		    else q <= q + 1;
		  end
		endmodule`, "counter")
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSimulator(d, "counter", map[string]uint64{"W": 3})
	if err != nil {
		t.Fatal(err)
	}
	s.SetInput("rst", 0)
	for i := 0; i < 10; i++ {
		s.Tick()
	}
	if v, _ := s.Peek("q"); v != 10%8 {
		t.Errorf("3-bit counter after 10 ticks = %d, want 2", v)
	}
}

// Property: the RTL adder agrees with Go addition for all inputs.
func TestQuickSimAdder(t *testing.T) {
	s := newSim(t, adderDesign, "top")
	f := func(a, b uint8) bool {
		s.SetInput("x1", uint64(a))
		s.SetInput("x2", uint64(b))
		if err := s.Settle(); err != nil {
			return false
		}
		v, err := s.Peek("s")
		return err == nil && v == uint64(a)+uint64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a hierarchical 2-stage pipeline delays any input stream by
// exactly two cycles.
func TestQuickSimPipelineDelay(t *testing.T) {
	s := newSim(t, `
		module stage(input clk, input [7:0] d, output reg [7:0] q);
		  always @(posedge clk) q <= d;
		endmodule
		module pipe(input clk, input [7:0] in, output [7:0] out);
		  wire [7:0] mid;
		  stage s0 (.clk(clk), .d(in), .q(mid));
		  stage s1 (.clk(clk), .d(mid), .q(out));
		endmodule`, "pipe")
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s.Reset()
		stream := make([]uint64, 12)
		for i := range stream {
			stream[i] = uint64(r.Intn(256))
		}
		for i, v := range stream {
			s.SetInput("in", v)
			if err := s.Tick(); err != nil {
				return false
			}
			if i >= 1 {
				// After tick i, out holds stream[i-1]. (Two registers, but the
				// first tick loads stage0 and the second moves it to out.)
				got, _ := s.Peek("out")
				if got != stream[i-1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
