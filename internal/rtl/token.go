package rtl

import "fmt"

// tokKind enumerates lexical token kinds of the Verilog subset.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber // 42, 16'hBEEF, 4'b1010, 8'd255
	tokPunct  // ( ) [ ] { } ; , . : # = @ ? etc. and multi-char operators
	tokKeyword
)

// keywords of the supported subset.
var keywords = map[string]bool{
	"module": true, "endmodule": true,
	"input": true, "output": true, "inout": true,
	"wire": true, "reg": true,
	"assign": true, "always": true,
	"posedge": true, "negedge": true,
	"begin": true, "end": true,
	"if": true, "else": true,
	"parameter": true, "localparam": true,
}

// token is one lexical token with its source position.
type token struct {
	kind tokKind
	text string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return fmt.Sprintf("identifier %q", t.text)
	case tokNumber:
		return fmt.Sprintf("number %q", t.text)
	case tokKeyword:
		return fmt.Sprintf("keyword %q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// is reports whether the token is the given punctuation or keyword text.
func (t token) is(text string) bool {
	return (t.kind == tokPunct || t.kind == tokKeyword) && t.text == text
}

// SyntaxError reports a lexical or parse error with position information.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("rtl: line %d:%d: %s", e.Line, e.Col, e.Msg)
}
