package rtl

import (
	"fmt"
	"sort"
	"strings"
)

// WriteModule renders a module back to Verilog-subset source text. The
// output re-parses to an equivalent module (same structure, elaboration
// and structural hash), which the tests verify by round-trip.
func WriteModule(m *Module) string {
	var sb strings.Builder
	sb.WriteString("module ")
	sb.WriteString(m.Name)

	var publicParams, localParams []Param
	for _, p := range m.Params {
		if p.IsLocal {
			localParams = append(localParams, p)
		} else {
			publicParams = append(publicParams, p)
		}
	}
	if len(publicParams) > 0 {
		sb.WriteString(" #(")
		for i, p := range publicParams {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "parameter %s = %s", p.Name, p.Default)
		}
		sb.WriteString(")")
	}

	sb.WriteString("(")
	for i, p := range m.Ports {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p.Dir.String())
		if p.IsReg {
			sb.WriteString(" reg")
		}
		sb.WriteString(writeRange(p.Range))
		sb.WriteString(" ")
		sb.WriteString(p.Name)
	}
	sb.WriteString(");\n")

	for _, p := range localParams {
		fmt.Fprintf(&sb, "  localparam %s = %s;\n", p.Name, p.Default)
	}
	for _, n := range m.Nets {
		kind := "wire"
		if n.IsReg {
			kind = "reg"
		}
		fmt.Fprintf(&sb, "  %s%s %s;\n", kind, writeRange(n.Range), n.Name)
	}
	for _, inst := range m.Instances {
		sb.WriteString("  ")
		sb.WriteString(inst.ModuleName)
		if len(inst.Params) > 0 {
			sb.WriteString(" #(")
			names := make([]string, 0, len(inst.Params))
			for name := range inst.Params {
				names = append(names, name)
			}
			sort.Strings(names)
			for i, name := range names {
				if i > 0 {
					sb.WriteString(", ")
				}
				fmt.Fprintf(&sb, ".%s(%s)", name, inst.Params[name])
			}
			sb.WriteString(")")
		}
		fmt.Fprintf(&sb, " %s (", inst.Name)
		for i, key := range inst.Order {
			if i > 0 {
				sb.WriteString(", ")
			}
			val := inst.Conns[key]
			if idx, pos := isPositionalKey(key); pos {
				_ = idx
				if val != nil {
					sb.WriteString(val.String())
				}
				continue
			}
			if val == nil {
				fmt.Fprintf(&sb, ".%s()", key)
			} else {
				fmt.Fprintf(&sb, ".%s(%s)", key, val)
			}
		}
		sb.WriteString(");\n")
	}
	for _, a := range m.Assigns {
		fmt.Fprintf(&sb, "  assign %s = %s;\n", a.LHS, a.RHS)
	}
	for _, alw := range m.Alwayses {
		edge := "posedge"
		if alw.Negedge {
			edge = "negedge"
		}
		fmt.Fprintf(&sb, "  always @(%s %s) begin\n", edge, alw.Clock)
		for _, sa := range alw.Body {
			sb.WriteString("    ")
			for _, g := range sa.Guard {
				fmt.Fprintf(&sb, "if (%s) ", g)
			}
			fmt.Fprintf(&sb, "%s <= %s;\n", sa.LHS, sa.RHS)
		}
		sb.WriteString("  end\n")
	}
	sb.WriteString("endmodule\n")
	return sb.String()
}

// WriteDesign renders every module of a design, top module last (Verilog
// accepts any order; last placement reads naturally).
func WriteDesign(d *Design) string {
	var sb strings.Builder
	names := d.SortedModuleNames()
	for _, n := range names {
		if n == d.Top {
			continue
		}
		sb.WriteString(WriteModule(d.Modules[n]))
		sb.WriteString("\n")
	}
	sb.WriteString(WriteModule(d.Modules[d.Top]))
	return sb.String()
}

func writeRange(r Range) string {
	if r.IsScalar() {
		return ""
	}
	return fmt.Sprintf(" [%s:%s]", r.Msb, r.Lsb)
}
