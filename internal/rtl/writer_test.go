package rtl

import (
	"testing"
)

// roundTrip parses src, writes it back, re-parses, and compares structural
// hashes of every module.
func roundTrip(t *testing.T, src, top string) {
	t.Helper()
	d1, err := ParseDesign(src, top)
	if err != nil {
		t.Fatalf("first parse: %v", err)
	}
	rendered := WriteDesign(d1)
	d2, err := ParseDesign(rendered, top)
	if err != nil {
		t.Fatalf("re-parse of rendered source: %v\n%s", err, rendered)
	}
	for _, name := range d1.SortedModuleNames() {
		em1, err := d1.Elaborate(name, nil)
		if err != nil {
			continue // modules needing parameters elaborate via parents
		}
		em2, err := d2.Elaborate(name, nil)
		if err != nil {
			t.Fatalf("module %s missing after round trip: %v", name, err)
		}
		if d1.StructuralHash(em1) != d2.StructuralHash(em2) {
			t.Errorf("module %s structural hash changed after round trip:\n%s",
				name, WriteModule(d2.Modules[name]))
		}
	}
}

func TestWriterRoundTripAdder(t *testing.T) {
	roundTrip(t, adderDesign, "top")
}

func TestWriterRoundTripChain(t *testing.T) {
	roundTrip(t, chainDesign, "top")
}

func TestWriterRoundTripGuards(t *testing.T) {
	roundTrip(t, `
		module m(input clk, input rst, input en, input [7:0] d, output reg [7:0] q);
		  always @(posedge clk) begin
		    if (rst) q <= 8'd0;
		    else if (en) q <= d;
		  end
		endmodule`, "m")
}

func TestWriterRoundTripParameters(t *testing.T) {
	roundTrip(t, `
		module leaf #(parameter W = 4) (input [W-1:0] a, output [W-1:0] y);
		  localparam HALF = W / 2;
		  assign y = a ^ {HALF{2'b01}};
		endmodule
		module top(input [7:0] x, output [7:0] z);
		  leaf #(.W(8)) u0 (.a(x), .y(z));
		endmodule`, "top")
}

func TestWriterRoundTripBlackbox(t *testing.T) {
	roundTrip(t, `
		module m(input clk, input [17:0] a, input [17:0] b, output [47:0] p);
		  DSP48E2 mul (.CLK(clk), .A(a), .B(b), .P(p));
		  RAMB36E2 mem (.CLK(clk));
		endmodule`, "m")
}

func TestWriterRoundTripUnconnectedAndNegedge(t *testing.T) {
	roundTrip(t, `
		module sub(input a, input b, output y); assign y = a & b; endmodule
		module m(input clk, input x, output z);
		  reg r;
		  sub u (.a(x), .b(), .y(z));
		  always @(negedge clk) r <= x;
		endmodule`, "m")
}

// The generated BrainWave accelerator must survive a round trip: this
// exercises every construct the generator emits.
func TestWriterRoundTripBWTop(t *testing.T) {
	// Import cycle prevents using bwrtl here; reproduce a representative
	// slice of its constructs instead.
	roundTrip(t, `
		module mvm_like(input clk, input [63:0] vec, input v, input [15:0] cmd,
		                output [63:0] partial, output pv_o);
		  wire [15:0] lane0;
		  reg [15:0] addr_r;
		  reg [63:0] acc_r;
		  reg pv;
		  URAM288 wm (.CLK(clk));
		  DSP48E2 d0 (.CLK(clk), .A(vec[15:0]), .B(acc_r[15:0]), .P(lane0));
		  always @(posedge clk) begin
		    if (cmd[15]) addr_r <= cmd;
		    else addr_r <= addr_r + 16'd1;
		    acc_r <= {48'd0, lane0} + acc_r;
		    pv <= v;
		  end
		  assign partial = acc_r;
		  assign pv_o = pv;
		endmodule
		module top(input clk, input [63:0] x, input xv, input [15:0] c, output [63:0] y, output yv);
		  mvm_like t0 (.clk(clk), .vec(x), .v(xv), .cmd(c), .partial(y), .pv_o(yv));
		endmodule`, "top")
}

// Functional round trip: the rendered design simulates identically.
func TestWriterRoundTripSimulates(t *testing.T) {
	src := `
		module top(input clk, input [7:0] a, input [7:0] b, output reg [7:0] q);
		  wire [7:0] s;
		  assign s = a + b;
		  always @(posedge clk) q <= s ^ {a[3:0], b[7:4]};
		endmodule`
	d1, err := ParseDesign(src, "top")
	if err != nil {
		t.Fatal(err)
	}
	d2, err := ParseDesign(WriteDesign(d1), "top")
	if err != nil {
		t.Fatal(err)
	}
	s1, err := NewSimulator(d1, "top", nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewSimulator(d2, "top", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		a, b := uint64(i*37%256), uint64(i*91%256)
		s1.SetInput("a", a)
		s1.SetInput("b", b)
		s2.SetInput("a", a)
		s2.SetInput("b", b)
		if err := s1.Tick(); err != nil {
			t.Fatal(err)
		}
		if err := s2.Tick(); err != nil {
			t.Fatal(err)
		}
		v1, _ := s1.Peek("q")
		v2, _ := s2.Peek("q")
		if v1 != v2 {
			t.Fatalf("cycle %d: original %x, round-tripped %x", i, v1, v2)
		}
	}
}
