package scaleout

import (
	"errors"
	"testing"
	"time"

	"mlvfpga/internal/accel"
	"mlvfpga/internal/fp16"
	"mlvfpga/internal/kernels"
)

// flakyDRAM injects a failure after a fixed number of accesses, modelling
// a device dropping out mid-chain (e.g. ECC failure or board reset).
type flakyDRAM struct {
	inner     accel.DRAM
	remaining int
}

var errInjected = errors.New("injected DRAM failure")

func (f *flakyDRAM) ReadWords(addr, n int) ([]fp16.Num, error) {
	if f.remaining--; f.remaining < 0 {
		return nil, errInjected
	}
	return f.inner.ReadWords(addr, n)
}

func (f *flakyDRAM) WriteWords(addr int, vals []fp16.Num) error {
	if f.remaining--; f.remaining < 0 {
		return errInjected
	}
	return f.inner.WriteWords(addr, vals)
}

// A device failing mid-run must abort the pair: the peer unblocks from the
// barrier and Run returns the injected error instead of deadlocking.
func TestPairSurvivesDeviceFailure(t *testing.T) {
	w := kernels.RandomWeights(kernels.LSTM, 16, 1)
	sp, err := BuildScaledPair(w, 6, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Build machines by hand so device 0's DRAM is flaky underneath the
	// sync module.
	mem0 := accel.NewMemory(sp.Cfg.DRAMWords)
	mem1 := accel.NewMemory(sp.Cfg.DRAMWords)
	s0, s1, err := NewSyncPair(&flakyDRAM{inner: mem0, remaining: 20}, mem1, sp.SyncCfg)
	if err != nil {
		t.Fatal(err)
	}
	var ms [2]*accel.Machine
	for dev, s := range []accel.DRAM{s0, s1} {
		m, err := accel.NewWithDRAM(sp.Cfg, s)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.DRAMPort().WriteWords(0, sp.Images[dev]); err != nil {
			t.Fatal(err)
		}
		for i := range sp.Images[dev][:0] {
			_ = i
		}
		h2 := sp.Spec.Hidden / 2
		for i := 0; i < 8; i++ {
			if err := m.ConfigureMatrix(i, h2, sp.Spec.Hidden); err != nil {
				t.Fatal(err)
			}
		}
		ms[dev] = m
	}
	for tt := 0; tt < sp.Spec.TimeSteps; tt++ {
		if err := sp.SetInput(ms, tt, make([]float64, sp.Spec.Hidden)); err != nil {
			t.Fatal(err)
		}
	}

	done := make(chan error, 1)
	go func() { done <- sp.Run(ms) }()
	select {
	case err := <-done:
		if !errors.Is(err, errInjected) {
			t.Errorf("Run = %v, want the injected failure", err)
		}
		var de *DeviceError
		if !errors.As(err, &de) {
			t.Fatalf("Run = %v, want a *DeviceError the control plane can act on", err)
		}
		if de.Device != 0 {
			t.Errorf("DeviceError.Device = %d, want 0 (the flaky member)", de.Device)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pair deadlocked after device failure")
	}
}

// Same for the n-way group: one dead device must not hang the other three.
func TestGroupSurvivesDeviceFailure(t *testing.T) {
	w := kernels.RandomWeights(kernels.GRU, 16, 1)
	sg, err := BuildScaledGroup(w, 6, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	inners := make([]accel.DRAM, 4)
	for i := range inners {
		inners[i] = accel.NewMemory(sg.Cfg.DRAMWords)
	}
	inners[2] = &flakyDRAM{inner: inners[2], remaining: 12}
	syncs, err := NewSyncGroup(inners, sg.SyncCfg)
	if err != nil {
		t.Fatal(err)
	}
	ms := make([]*accel.Machine, 4)
	shard := sg.Spec.Hidden / 4
	for dev := 0; dev < 4; dev++ {
		m, err := accel.NewWithDRAM(sg.Cfg, syncs[dev])
		if err != nil {
			t.Fatal(err)
		}
		if err := m.DRAMPort().WriteWords(0, sg.Images[dev]); err != nil && dev != 2 {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			if err := m.ConfigureMatrix(i, shard, sg.Spec.Hidden); err != nil {
				t.Fatal(err)
			}
		}
		ms[dev] = m
	}
	done := make(chan error, 1)
	go func() { done <- sg.Run(ms) }()
	select {
	case err := <-done:
		if !errors.Is(err, errInjected) {
			t.Errorf("Run = %v, want the injected failure", err)
		}
		// The typed error must finger the injected member, not a victim
		// that merely observed the abort barrier — this is what lets the
		// control plane mark the right device dead instead of stalling.
		var de *DeviceError
		if !errors.As(err, &de) {
			t.Fatalf("Run = %v, want a *DeviceError", err)
		}
		if de.Device != 2 {
			t.Errorf("DeviceError.Device = %d, want 2 (the flaky member)", de.Device)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("group deadlocked after device failure")
	}
}

// Abort is idempotent and unblocks subsequent waits immediately.
func TestAbortIdempotent(t *testing.T) {
	mem0, mem1 := accel.NewMemory(64), accel.NewMemory(64)
	s0, s1, err := NewSyncPair(mem0, mem1, Config{SendAddr: 100, RecvAddr: 101, HalfWords: 2})
	if err != nil {
		t.Fatal(err)
	}
	s0.Abort()
	s0.Abort() // idempotent: no panic
	// After the abort, sends stop blocking: within a few attempts the
	// buffer fills and the abort path must fire (select between a ready
	// buffer slot and the closed abort channel is racy by design, so only
	// the eventual outcome is deterministic).
	aborted := false
	for i := 0; i < 3 && !aborted; i++ {
		if err := s1.WriteWords(100, make([]fp16.Num, 2)); errors.Is(err, ErrPeerAborted) {
			aborted = true
		}
	}
	if !aborted {
		t.Error("sends after abort never returned ErrPeerAborted")
	}
	// On a fresh pair with no peer data in flight, a receive after abort
	// fails immediately instead of blocking.
	f0, _, err := NewSyncPair(accel.NewMemory(64), accel.NewMemory(64),
		Config{SendAddr: 100, RecvAddr: 101, HalfWords: 2})
	if err != nil {
		t.Fatal(err)
	}
	f0.lastOwn = make([]fp16.Num, 2)
	f0.Abort()
	if _, err := f0.ReadWords(101, 4); !errors.Is(err, ErrPeerAborted) {
		t.Errorf("receive after abort = %v, want ErrPeerAborted", err)
	}
}
