package scaleout

import (
	"errors"
	"fmt"
	"sync"

	"mlvfpga/internal/accel"
	"mlvfpga/internal/fp16"
	"mlvfpga/internal/isa"
	"mlvfpga/internal/kernels"
)

// This file generalizes the 2-device sync pair to n devices, the
// functional counterpart of the runtime's 4-piece heterogeneous
// deployments: each device holds a 1/n row-shard of every weight matrix
// and the sync modules all-gather the hidden-state shards each step.

// GroupSync is the n-way generalization of SyncModule: a write to the send
// address broadcasts the device's shard to every peer; a read from the
// receive address blocks until all peers' shards arrive and returns the
// full vector assembled in device order.
type GroupSync struct {
	inner accel.DRAM

	sendAddr, recvAddr int
	shardWords         int
	index, n           int

	outs    []chan<- []fp16.Num // one per peer, indexed by peer id (own slot nil)
	ins     []<-chan []fp16.Num
	lastOwn []fp16.Num
	abort   *abortState

	stats SyncStats
}

// Abort unblocks every device's barrier waits; further sync accesses fail
// with ErrPeerAborted.
func (g *GroupSync) Abort() { g.abort.abort() }

// NewSyncGroup links n DRAM ports with all-gather sync modules. Device i
// holds shard i. shardWords is the per-device shard length.
func NewSyncGroup(inners []accel.DRAM, cfg Config) ([]*GroupSync, error) {
	n := len(inners)
	if n < 2 {
		return nil, fmt.Errorf("scaleout: sync group needs >= 2 devices, got %d", n)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// chans[from][to]; buffered so the all-send phase never blocks.
	chans := make([][]chan []fp16.Num, n)
	for i := range chans {
		chans[i] = make([]chan []fp16.Num, n)
		for j := range chans[i] {
			if i != j {
				chans[i][j] = make(chan []fp16.Num, 1)
			}
		}
	}
	shared := newAbortState()
	out := make([]*GroupSync, n)
	for i := 0; i < n; i++ {
		outs := make([]chan<- []fp16.Num, n)
		ins := make([]<-chan []fp16.Num, n)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			outs[j] = chans[i][j]
			ins[j] = chans[j][i]
		}
		out[i] = &GroupSync{
			inner:    inners[i],
			sendAddr: cfg.SendAddr, recvAddr: cfg.RecvAddr,
			shardWords: cfg.HalfWords, index: i, n: n,
			outs: outs, ins: ins, abort: shared,
		}
	}
	return out, nil
}

// Stats returns the traffic counters.
func (g *GroupSync) Stats() SyncStats { return g.stats }

// WriteWords traps writes to the send address, broadcasting the shard.
func (g *GroupSync) WriteWords(addr int, vals []fp16.Num) error {
	if addr != g.sendAddr {
		return g.inner.WriteWords(addr, vals)
	}
	if len(vals) != g.shardWords {
		return fmt.Errorf("scaleout: group send of %d words, module configured for %d", len(vals), g.shardWords)
	}
	cp := append([]fp16.Num{}, vals...)
	g.lastOwn = cp
	for j, out := range g.outs {
		if j == g.index || out == nil {
			continue
		}
		select {
		case out <- cp:
		case <-g.abort.ch:
			return ErrPeerAborted
		}
		g.stats.WordsSent += int64(len(cp))
	}
	g.stats.Sends++
	return nil
}

// ReadWords traps reads from the receive address: it blocks until every
// peer's shard arrives (barrier) and assembles the full vector.
func (g *GroupSync) ReadWords(addr, n int) ([]fp16.Num, error) {
	if addr != g.recvAddr {
		return g.inner.ReadWords(addr, n)
	}
	if n != g.n*g.shardWords {
		return nil, fmt.Errorf("scaleout: group receive of %d words, want %d", n, g.n*g.shardWords)
	}
	if g.lastOwn == nil {
		return nil, errors.New("scaleout: group receive before any send")
	}
	out := make([]fp16.Num, 0, n)
	for j := 0; j < g.n; j++ {
		if j == g.index {
			out = append(out, g.lastOwn...)
			continue
		}
		var shard []fp16.Num
		select {
		case shard = <-g.ins[j]:
		case <-g.abort.ch:
			return nil, ErrPeerAborted
		}
		g.stats.WordsReceived += int64(len(shard))
		out = append(out, shard...)
	}
	g.stats.Receives++
	return out, nil
}

// ScaledGroup is an n-device scaled-down deployment of one RNN layer.
type ScaledGroup struct {
	Spec    kernels.LayerSpec
	N       int
	Progs   []isa.Program
	Images  [][]fp16.Num
	Cfg     accel.Config
	SyncCfg Config

	inputBase, outputBase int
}

// lengthMode returns the v_rd/v_const length selector for a 1/n shard.
func lengthMode(n int) (uint8, error) {
	switch n {
	case 2:
		return 1, nil
	case 4:
		return 2, nil
	}
	return 0, fmt.Errorf("scaleout: unsupported group size %d (want 2 or 4)", n)
}

// BuildScaledGroup compiles a layer for n scaled-down accelerators with
// tilesPerDevice tile engines each. n must be 2 or 4 and divide the hidden
// dimension.
func BuildScaledGroup(w *kernels.Weights, timeSteps, tilesPerDevice, n int) (*ScaledGroup, error) {
	mode, err := lengthMode(n)
	if err != nil {
		return nil, err
	}
	if timeSteps <= 0 {
		return nil, fmt.Errorf("scaleout: timeSteps = %d", timeSteps)
	}
	if w.Kind != kernels.LSTM && w.Kind != kernels.GRU {
		return nil, fmt.Errorf("scaleout: no scaled step program for %v", w.Kind)
	}
	h := w.Hidden
	if h%n != 0 {
		return nil, fmt.Errorf("scaleout: hidden %d not divisible by %d", h, n)
	}
	shard := h / n
	spec := kernels.LayerSpec{Kind: w.Kind, Hidden: h, TimeSteps: timeSteps}
	cfg := kernels.DefaultConfig(spec, tilesPerDevice)
	sg := &ScaledGroup{Spec: spec, N: n, Cfg: cfg}

	mats := matNames(w.Kind)
	biases := biasNames(w.Kind)

	next := 0
	alloc := func(words int) int { a := next; next += words; return a }
	matAddr := map[string]int{}
	for _, name := range mats {
		matAddr[name] = alloc(shard * h)
	}
	biasAddr := map[string]int{}
	for _, name := range biases {
		biasAddr[name] = alloc(shard)
	}
	sg.inputBase = alloc(h * timeSteps)
	sg.outputBase = alloc(shard * timeSteps)
	if next > cfg.DRAMWords {
		return nil, fmt.Errorf("scaleout: layer needs %d DRAM words, have %d", next, cfg.DRAMWords)
	}
	sg.SyncCfg = Config{
		SendAddr:  cfg.DRAMWords,
		RecvAddr:  cfg.DRAMWords + 1,
		HalfWords: shard,
	}

	for dev := 0; dev < n; dev++ {
		image := make([]fp16.Num, sg.inputBase)
		for _, name := range mats {
			rows := w.M[name][dev*shard*h : (dev+1)*shard*h]
			copy(image[matAddr[name]:], fp16.FromSlice64(rows))
		}
		for _, name := range biases {
			half := w.B[name][dev*shard : (dev+1)*shard]
			copy(image[biasAddr[name]:], fp16.FromSlice64(half))
		}
		sg.Images = append(sg.Images, image)
	}

	var p isa.Program
	for i, name := range mats {
		p = append(p, isa.Instr{Op: isa.OpMRead, Dst: uint8(i), Imm: uint32(matAddr[name])})
	}
	for i, name := range biases {
		p = append(p, isa.Instr{Op: isa.OpVRead, Dst: uint8(3 + i), Src2: mode, Imm: uint32(biasAddr[name])})
	}
	p = append(p, isa.Instr{Op: isa.OpVConst, Dst: 1, Imm: 0})
	switch w.Kind {
	case kernels.LSTM:
		p = append(p, isa.Instr{Op: isa.OpVConst, Dst: 2, Src1: mode, Imm: 0})
	case kernels.GRU:
		p = append(p, isa.Instr{Op: isa.OpVConst, Dst: 12, Src1: mode, Imm: 0})
	}
	for t := 0; t < timeSteps; t++ {
		p = append(p, isa.Instr{Op: isa.OpVRead, Dst: 0, Imm: uint32(sg.InputAddr(t))})
		switch w.Kind {
		case kernels.LSTM:
			p = append(p, scaledLSTMStep()...)
		case kernels.GRU:
			p = append(p, scaledGRUStep()...)
		}
		own := uint8(14)
		if w.Kind == kernels.GRU {
			own = 12
		}
		p = append(p,
			isa.Instr{Op: isa.OpVWrite, Src1: own, Imm: uint32(sg.SyncCfg.SendAddr)},
			isa.Instr{Op: isa.OpVWrite, Src1: own, Imm: uint32(sg.OutputAddr(t))},
			isa.Instr{Op: isa.OpVRead, Dst: 1, Imm: uint32(sg.SyncCfg.RecvAddr)},
		)
	}
	p = append(p, isa.Instr{Op: isa.OpEndChain})
	for dev := 0; dev < n; dev++ {
		sg.Progs = append(sg.Progs, append(isa.Program{}, p...))
	}
	return sg, nil
}

// InputAddr returns the DRAM address of x_t.
func (sg *ScaledGroup) InputAddr(t int) int { return sg.inputBase + t*sg.Spec.Hidden }

// OutputAddr returns where a device stores its shard of h_t.
func (sg *ScaledGroup) OutputAddr(t int) int { return sg.outputBase + t*sg.Spec.Hidden/sg.N }

// NewMachines builds the n linked machines.
func (sg *ScaledGroup) NewMachines() ([]*accel.Machine, []*GroupSync, error) {
	inners := make([]accel.DRAM, sg.N)
	for i := range inners {
		inners[i] = accel.NewMemory(sg.Cfg.DRAMWords)
	}
	syncs, err := NewSyncGroup(inners, sg.SyncCfg)
	if err != nil {
		return nil, nil, err
	}
	ms := make([]*accel.Machine, sg.N)
	shard := sg.Spec.Hidden / sg.N
	for dev := 0; dev < sg.N; dev++ {
		m, err := accel.NewWithDRAM(sg.Cfg, syncs[dev])
		if err != nil {
			return nil, nil, err
		}
		if err := m.DRAMPort().WriteWords(0, sg.Images[dev]); err != nil {
			return nil, nil, err
		}
		for i := range matNames(sg.Spec.Kind) {
			if err := m.ConfigureMatrix(i, shard, sg.Spec.Hidden); err != nil {
				return nil, nil, err
			}
		}
		ms[dev] = m
	}
	return ms, syncs, nil
}

// SetInput broadcasts x_t to every device's DRAM.
func (sg *ScaledGroup) SetInput(ms []*accel.Machine, t int, x []float64) error {
	if len(x) != sg.Spec.Hidden {
		return fmt.Errorf("scaleout: input length %d, want %d", len(x), sg.Spec.Hidden)
	}
	words := fp16.FromSlice64(x)
	for _, m := range ms {
		if err := m.DRAMPort().WriteWords(sg.InputAddr(t), words); err != nil {
			return err
		}
	}
	return nil
}

// ReadOutput reassembles h_t from the devices' output shards.
func (sg *ScaledGroup) ReadOutput(ms []*accel.Machine, t int) ([]float64, error) {
	shard := sg.Spec.Hidden / sg.N
	out := make([]float64, 0, sg.Spec.Hidden)
	for _, m := range ms {
		words, err := m.DRAMPort().ReadWords(sg.OutputAddr(t), shard)
		if err != nil {
			return nil, err
		}
		out = append(out, fp16.ToSlice64(words)...)
	}
	return out, nil
}

// Run executes all devices concurrently; a failing device aborts the
// group so the others unblock. The originating failure is returned as a
// *DeviceError naming the failed group member, so a control plane can
// mark that device unhealthy and re-place the work instead of guessing.
func (sg *ScaledGroup) Run(ms []*accel.Machine) error {
	var wg sync.WaitGroup
	errs := make([]error, len(ms))
	for dev := range ms {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			errs[d] = ms[d].Run(sg.Progs[d])
			if errs[d] != nil {
				if s, ok := accel.UnwrapDRAM(ms[d].DRAMPort()).(*GroupSync); ok {
					s.Abort()
				}
			}
		}(dev)
	}
	wg.Wait()
	return firstDeviceError(errs)
}

// DeviceError reports which member of a scaled deployment failed mid-run.
// It wraps the device's own error, so errors.Is still matches the root
// cause; errors.As surfaces the failed device index for placement logic.
type DeviceError struct {
	// Device is the failing member's index within the group (its shard
	// position, not a cluster-wide FPGA id).
	Device int
	Err    error
}

func (e *DeviceError) Error() string {
	return fmt.Sprintf("scaleout: device %d failed mid-group: %v", e.Device, e.Err)
}

func (e *DeviceError) Unwrap() error { return e.Err }

// firstDeviceError picks the originating failure of a group run: the first
// non-abort error (devices that merely observed the abort barrier are
// victims, not causes), falling back to the first abort error.
func firstDeviceError(errs []error) error {
	for d, err := range errs {
		if err != nil && !errors.Is(err, ErrPeerAborted) {
			return &DeviceError{Device: d, Err: err}
		}
	}
	for d, err := range errs {
		if err != nil {
			return &DeviceError{Device: d, Err: err}
		}
	}
	return nil
}
