package scaleout

import (
	"math"
	"math/rand"
	"testing"

	"mlvfpga/internal/accel"
	"mlvfpga/internal/fp16"
	"mlvfpga/internal/kernels"
)

func TestSyncGroupAllGather(t *testing.T) {
	const n, shard = 4, 2
	inners := make([]accel.DRAM, n)
	for i := range inners {
		inners[i] = accel.NewMemory(64)
	}
	syncs, err := NewSyncGroup(inners, Config{SendAddr: 100, RecvAddr: 101, HalfWords: shard})
	if err != nil {
		t.Fatal(err)
	}
	// Each device sends [10i, 10i+1].
	for i, s := range syncs {
		vals := []fp16.Num{fp16.FromFloat64(float64(10 * i)), fp16.FromFloat64(float64(10*i + 1))}
		if err := s.WriteWords(100, vals); err != nil {
			t.Fatal(err)
		}
	}
	want := []float64{0, 1, 10, 11, 20, 21, 30, 31}
	for i, s := range syncs {
		got, err := s.ReadWords(101, n*shard)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if got[j].Float64() != want[j] {
				t.Errorf("device %d gathered[%d] = %v, want %v", i, j, got[j].Float64(), want[j])
			}
		}
		st := s.Stats()
		if st.Sends != 1 || st.Receives != 1 || st.WordsSent != int64(shard*(n-1)) {
			t.Errorf("device %d stats = %+v", i, st)
		}
	}
}

func TestSyncGroupErrors(t *testing.T) {
	if _, err := NewSyncGroup([]accel.DRAM{accel.NewMemory(8)}, Config{SendAddr: 1, RecvAddr: 2, HalfWords: 1}); err == nil {
		t.Error("single-device group must fail")
	}
	inners := []accel.DRAM{accel.NewMemory(8), accel.NewMemory(8)}
	if _, err := NewSyncGroup(inners, Config{SendAddr: 1, RecvAddr: 1, HalfWords: 1}); err == nil {
		t.Error("bad config must fail")
	}
	syncs, err := NewSyncGroup(inners, Config{SendAddr: 100, RecvAddr: 101, HalfWords: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := syncs[0].WriteWords(100, make([]fp16.Num, 3)); err == nil {
		t.Error("wrong shard size must fail")
	}
	if _, err := syncs[0].ReadWords(101, 3); err == nil {
		t.Error("wrong gather size must fail")
	}
	if _, err := syncs[0].ReadWords(101, 4); err == nil {
		t.Error("receive before send must fail")
	}
	// Pass-through still works.
	if err := syncs[0].WriteWords(3, []fp16.Num{9}); err != nil {
		t.Fatal(err)
	}
	if got, err := syncs[0].ReadWords(3, 1); err != nil || got[0] != 9 {
		t.Errorf("pass-through = %v, %v", got, err)
	}
}

// Four scaled-down accelerators must reproduce the reference, for both
// cell kinds — the functional counterpart of the runtime's 4-piece
// heterogeneous deployments.
func runScaledGroup(t *testing.T, kind kernels.RNNKind, hidden, steps, n int) {
	t.Helper()
	w := kernels.RandomWeights(kind, hidden, 123)
	sg, err := BuildScaledGroup(w, steps, 1, n)
	if err != nil {
		t.Fatal(err)
	}
	sg.Cfg.MantissaBits = 9
	ms, syncs, err := sg.NewMachines()
	if err != nil {
		t.Fatal(err)
	}
	ref := kernels.NewReference(w)
	r := rand.New(rand.NewSource(5))
	inputs := make([][]float64, steps)
	for tt := range inputs {
		x := make([]float64, hidden)
		for i := range x {
			x[i] = r.NormFloat64() * 0.5
		}
		inputs[tt] = x
		if err := sg.SetInput(ms, tt, x); err != nil {
			t.Fatal(err)
		}
	}
	if err := sg.Run(ms); err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < steps; tt++ {
		want, err := ref.Step(inputs[tt])
		if err != nil {
			t.Fatal(err)
		}
		got, err := sg.ReadOutput(ms, tt)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 0.1 {
				t.Fatalf("%v n=%d step %d elem %d: got %v, want %v", kind, n, tt, i, got[i], want[i])
			}
		}
	}
	for d, s := range syncs {
		if st := s.Stats(); st.Sends != steps || st.Receives != steps {
			t.Errorf("device %d stats = %+v", d, st)
		}
	}
}

func TestScaledGroup4LSTM(t *testing.T) { runScaledGroup(t, kernels.LSTM, 32, 4, 4) }
func TestScaledGroup4GRU(t *testing.T)  { runScaledGroup(t, kernels.GRU, 32, 4, 4) }
func TestScaledGroup2MatchesPairSemantics(t *testing.T) {
	runScaledGroup(t, kernels.LSTM, 32, 3, 2)
}

func TestBuildScaledGroupErrors(t *testing.T) {
	w := kernels.RandomWeights(kernels.GRU, 32, 1)
	if _, err := BuildScaledGroup(w, 1, 1, 3); err == nil {
		t.Error("n=3 must fail (no length mode)")
	}
	if _, err := BuildScaledGroup(w, 0, 1, 2); err == nil {
		t.Error("zero steps must fail")
	}
	wOdd := kernels.RandomWeights(kernels.GRU, 32, 1)
	wOdd.Hidden = 30
	if _, err := BuildScaledGroup(wOdd, 1, 1, 4); err == nil {
		t.Error("hidden not divisible by 4 must fail")
	}
}
