package scaleout

import (
	"time"

	"mlvfpga/internal/hsvital"
	"mlvfpga/internal/kernels"
	"mlvfpga/internal/netmodel"
	"mlvfpga/internal/perf"
)

// This file models the Fig. 11 experiment: one AS ISA-based accelerator
// deployed onto two FPGA devices, with a programmable delay module
// sweeping the added inter-FPGA latency. Per step, each device computes
// its half of the hidden state, exchanges it with the peer, and
// (optionally, with the §2.3 optimization) overlaps the transfer with the
// next step's input-dependent matrix products.

// TwoFPGAOptions configures the two-device latency model.
type TwoFPGAOptions struct {
	// Overlap enables the §2.3 optimization (instruction insertion +
	// reordering); without it the transfer serializes after each step.
	Overlap bool
	// Link is the inter-FPGA channel, including the programmable added
	// latency (the paper's counter+FIFO module).
	Link netmodel.Link
}

// TwoFPGAStep returns the steady-state per-timestep latency of a layer on
// two scaled-down accelerators, plus the exchange time and the overlap
// window for inspection.
func TwoFPGAStep(spec kernels.LayerSpec, device string, p perf.Params, opt TwoFPGAOptions) (step, comm, window time.Duration, err error) {
	tiles, err := perf.MinTilesScaled(spec, device, 2)
	if err != nil {
		return 0, 0, 0, err
	}
	m, err := hsvital.CalibratedAccelerator(device, tiles)
	if err != nil {
		return 0, 0, 0, err
	}
	clock := m.ClockMHz
	h := float64(spec.Hidden)
	h2 := h / 2

	// Per-device compute: each step issues the same instruction count plus
	// the three inserted sync instructions; each MVM covers the device's
	// h/2 rows by the full h columns; vector ops cover h/2 elements.
	nInstr := float64(kernels.StepInstructions(spec.Kind)) + 3
	nMVM := float64(kernels.MVMsPerStep(spec.Kind))
	issue := p.IssueCyclesPerInstr[device] * nInstr
	macsPerCycle := float64(tiles) * hsvital.TileMACsPerCycle
	mvm := nMVM * (h2*h/macsPerCycle + p.MVMFillCycles)
	nVec := nInstr - nMVM - 5 // v_rd x, v_wr out, and the 3 sync instructions
	vec := nVec * (h2/(float64(tiles)*p.VecLanesPerTile) + p.VecFillCycles)
	compute := cyclesToTime(issue+mvm+vec, clock)

	// Exchange: each device ships its h/2 half (2 bytes per element); the
	// ring is bidirectional so the two directions proceed concurrently.
	comm, err = opt.Link.TransferTime(int64(h2) * 2)
	if err != nil {
		return 0, 0, 0, err
	}

	// Overlap window: the x-dependent work of the next step that the
	// reordering tool schedules before the blocking receive. Per
	// overlapped gate that is one W*x matrix-vector product plus its bias
	// add — two issue slots, one MVM pass and one MFU pass. For the LSTM
	// all four gates qualify; in the GRU the candidate gate's product
	// serializes behind the reset gate, leaving two.
	overlapGates := 4.0
	switch spec.Kind {
	case kernels.GRU:
		overlapGates = 2.0
	case kernels.Attention:
		// The three x-only projections (q, k, v) schedule ahead of the
		// blocking receive; Wo waits on the normalized state.
		overlapGates = 3.0
	}
	perMVM := h2 * h / macsPerCycle
	windowCycles := overlapGates * (perMVM + p.MVMFillCycles +
		2*p.IssueCyclesPerInstr[device] + (h2/(float64(tiles)*p.VecLanesPerTile) + p.VecFillCycles))
	window = cyclesToTime(windowCycles, clock)

	if opt.Overlap {
		exposed := comm - window
		if exposed < 0 {
			exposed = 0
		}
		return compute + exposed, comm, window, nil
	}
	return compute + comm, comm, window, nil
}

// TwoFPGALatency returns the full-inference latency on two devices.
func TwoFPGALatency(spec kernels.LayerSpec, device string, p perf.Params, opt TwoFPGAOptions) (time.Duration, error) {
	step, _, _, err := TwoFPGAStep(spec, device, p, opt)
	if err != nil {
		return 0, err
	}
	return p.InvokeOverhead + time.Duration(spec.TimeSteps)*step, nil
}

// HiddenLatencyBudget returns the largest added inter-FPGA latency the
// overlap technique can still fully hide for a layer (the Fig. 11
// crossover).
func HiddenLatencyBudget(spec kernels.LayerSpec, device string, p perf.Params, base netmodel.Link) (time.Duration, error) {
	_, comm, window, err := TwoFPGAStep(spec, device, p, TwoFPGAOptions{Overlap: true, Link: base})
	if err != nil {
		return 0, err
	}
	budget := window - comm
	if budget < 0 {
		budget = 0
	}
	return budget, nil
}

func cyclesToTime(cycles, clockMHz float64) time.Duration {
	return time.Duration(cycles / clockMHz * float64(time.Microsecond))
}
