package scaleout

import (
	"fmt"
	"time"

	"mlvfpga/internal/hsvital"
	"mlvfpga/internal/kernels"
	"mlvfpga/internal/netmodel"
	"mlvfpga/internal/perf"
)

// NFPGAStep generalizes TwoFPGAStep to a deployment across len(devices)
// scaled-down accelerators, possibly of different device types — the
// heterogeneous multi-FPGA deployments that distinguish the proposed
// framework from existing HS abstractions (§4.4). Device i holds 1/n of
// every weight matrix's rows; each step ends with an all-gather of the
// hidden-state shares over the ring.
//
// The returned step time is the slowest device's compute plus the exposed
// (non-overlapped) communication.
func NFPGAStep(spec kernels.LayerSpec, devices []string, p perf.Params, opt TwoFPGAOptions) (time.Duration, error) {
	n := len(devices)
	if n < 2 {
		return 0, fmt.Errorf("scaleout: NFPGAStep needs >= 2 devices, got %d", n)
	}
	if spec.Hidden%n != 0 {
		return 0, fmt.Errorf("scaleout: hidden %d not divisible by %d devices", spec.Hidden, n)
	}
	h := float64(spec.Hidden)
	share := h / float64(n)

	var worstCompute time.Duration
	minWindow := time.Duration(1 << 62)
	for _, dev := range devices {
		tiles, err := perf.MinTilesScaled(spec, dev, n)
		if err != nil {
			return 0, err
		}
		m, err := hsvital.CalibratedAccelerator(dev, tiles)
		if err != nil {
			return 0, err
		}
		clock := m.ClockMHz
		nInstr := float64(kernels.StepInstructions(spec.Kind)) + 3
		nMVM := float64(kernels.MVMsPerStep(spec.Kind))
		issue := p.IssueCyclesPerInstr[dev] * nInstr
		macsPerCycle := float64(tiles) * hsvital.TileMACsPerCycle
		mvm := nMVM * (share*h/macsPerCycle + p.MVMFillCycles)
		nVec := nInstr - nMVM - 5
		vec := nVec * (share/(float64(tiles)*p.VecLanesPerTile) + p.VecFillCycles)
		compute := cyclesToTime(issue+mvm+vec, clock)
		if compute > worstCompute {
			worstCompute = compute
		}

		overlapGates := 4.0
		if spec.Kind == kernels.GRU {
			overlapGates = 2.0
		}
		perMVM := share * h / macsPerCycle
		windowCycles := overlapGates * (perMVM + p.MVMFillCycles +
			2*p.IssueCyclesPerInstr[dev] + (share/(float64(tiles)*p.VecLanesPerTile) + p.VecFillCycles))
		if w := cyclesToTime(windowCycles, clock); w < minWindow {
			minWindow = w
		}
	}

	// All-gather: every device receives the other n-1 shares. On the
	// bidirectional ring the shares stream both ways concurrently, so the
	// serialized volume per device is half the missing data, but at least
	// one share.
	gatherWords := share * float64(n-1) / 2
	if gatherWords < share {
		gatherWords = share
	}
	comm, err := opt.Link.TransferTime(int64(gatherWords) * 2)
	if err != nil {
		return 0, err
	}
	if opt.Overlap {
		exposed := comm - minWindow
		if exposed < 0 {
			exposed = 0
		}
		return worstCompute + exposed, nil
	}
	return worstCompute + comm, nil
}

// NFPGALatency is the full-inference latency of an n-device deployment.
func NFPGALatency(spec kernels.LayerSpec, devices []string, p perf.Params, opt TwoFPGAOptions) (time.Duration, error) {
	step, err := NFPGAStep(spec, devices, p, opt)
	if err != nil {
		return 0, err
	}
	return p.InvokeOverhead + time.Duration(spec.TimeSteps)*step, nil
}

// DefaultOptions returns the standard configuration: overlap enabled over
// the default ring link.
func DefaultOptions() TwoFPGAOptions {
	return TwoFPGAOptions{Overlap: true, Link: netmodel.DefaultRingLink()}
}
