package scaleout

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"mlvfpga/internal/accel"
	"mlvfpga/internal/fp16"
	"mlvfpga/internal/isa"
	"mlvfpga/internal/kernels"
	"mlvfpga/internal/netmodel"
	"mlvfpga/internal/perf"
)

func TestSyncConfigValidate(t *testing.T) {
	if err := (Config{SendAddr: 1, RecvAddr: 1, HalfWords: 4}).Validate(); err == nil {
		t.Error("colliding addresses must fail")
	}
	if err := (Config{SendAddr: 1, RecvAddr: 2, HalfWords: 0}).Validate(); err == nil {
		t.Error("zero half words must fail")
	}
}

func TestSyncPairExchange(t *testing.T) {
	mem0, mem1 := accel.NewMemory(64), accel.NewMemory(64)
	cfg := Config{SendAddr: 100, RecvAddr: 101, HalfWords: 2}
	s0, s1, err := NewSyncPair(mem0, mem1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := []fp16.Num{fp16.FromFloat64(1), fp16.FromFloat64(2)}
	b := []fp16.Num{fp16.FromFloat64(3), fp16.FromFloat64(4)}
	if err := s0.WriteWords(100, a); err != nil {
		t.Fatal(err)
	}
	if err := s1.WriteWords(100, b); err != nil {
		t.Fatal(err)
	}
	got0, err := s0.ReadWords(101, 4)
	if err != nil {
		t.Fatal(err)
	}
	got1, err := s1.ReadWords(101, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Device 0: own half first -> [1 2 3 4]; device 1: peer first -> same.
	for i, want := range []float64{1, 2, 3, 4} {
		if got0[i].Float64() != want || got1[i].Float64() != want {
			t.Errorf("combined[%d] = %v / %v, want %v", i, got0[i].Float64(), got1[i].Float64(), want)
		}
	}
	st := s0.Stats()
	if st.Sends != 1 || st.Receives != 1 || st.WordsSent != 2 || st.WordsReceived != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSyncPassThrough(t *testing.T) {
	mem0, mem1 := accel.NewMemory(64), accel.NewMemory(64)
	s0, _, err := NewSyncPair(mem0, mem1, Config{SendAddr: 100, RecvAddr: 101, HalfWords: 2})
	if err != nil {
		t.Fatal(err)
	}
	vals := []fp16.Num{7}
	if err := s0.WriteWords(5, vals); err != nil {
		t.Fatal(err)
	}
	got, err := s0.ReadWords(5, 1)
	if err != nil || got[0] != 7 {
		t.Errorf("pass-through failed: %v %v", got, err)
	}
	// The trapped write must NOT have touched DRAM.
	if err := s0.WriteWords(100, []fp16.Num{9, 9}); err != nil {
		t.Fatal(err)
	}
	inner, _ := mem0.ReadWords(0, 64)
	for i, w := range inner {
		if i == 5 {
			continue
		}
		if w != 0 {
			t.Fatalf("trapped write leaked into DRAM at %d", i)
		}
	}
}

func TestSyncErrors(t *testing.T) {
	mem0, mem1 := accel.NewMemory(64), accel.NewMemory(64)
	s0, _, _ := NewSyncPair(mem0, mem1, Config{SendAddr: 100, RecvAddr: 101, HalfWords: 2})
	if err := s0.WriteWords(100, make([]fp16.Num, 3)); err == nil {
		t.Error("wrong send size must fail")
	}
	if _, err := s0.ReadWords(101, 3); err == nil {
		t.Error("wrong receive size must fail")
	}
	if _, err := s0.ReadWords(101, 4); err == nil {
		t.Error("receive before send must fail")
	}
	if _, _, err := NewSyncPair(mem0, mem1, Config{SendAddr: 1, RecvAddr: 1, HalfWords: 1}); err == nil {
		t.Error("bad config must fail")
	}
}

// The functional heart of §2.3: two scaled-down accelerators connected by
// sync modules compute the same results as the float64 reference.
func runScaledPair(t *testing.T, kind kernels.RNNKind, hidden, steps int, reorder bool) {
	t.Helper()
	w := kernels.RandomWeights(kind, hidden, 99)
	sp, err := BuildScaledPair(w, steps, 1)
	if err != nil {
		t.Fatal(err)
	}
	sp.Cfg.MantissaBits = 9
	if reorder {
		for d := 0; d < 2; d++ {
			sp.Progs[d] = ReorderForOverlap(sp.Progs[d],
				uint32(sp.SyncCfg.SendAddr), uint32(sp.SyncCfg.RecvAddr))
		}
	}
	ms, syncs, err := sp.NewMachines()
	if err != nil {
		t.Fatal(err)
	}
	ref := kernels.NewReference(w)
	r := rand.New(rand.NewSource(3))
	inputs := make([][]float64, steps)
	for tt := range inputs {
		x := make([]float64, hidden)
		for i := range x {
			x[i] = r.NormFloat64() * 0.5
		}
		inputs[tt] = x
		if err := sp.SetInput(ms, tt, x); err != nil {
			t.Fatal(err)
		}
	}
	if err := sp.Run(ms); err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < steps; tt++ {
		want, err := ref.Step(inputs[tt])
		if err != nil {
			t.Fatal(err)
		}
		got, err := sp.ReadOutput(ms, tt)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 0.1 {
				t.Fatalf("%v reorder=%v step %d elem %d: got %v, want %v",
					kind, reorder, tt, i, got[i], want[i])
			}
		}
	}
	// Every step exchanged exactly one half-vector each way.
	for d := 0; d < 2; d++ {
		st := syncs[d].Stats()
		if st.Sends != steps || st.Receives != steps {
			t.Errorf("device %d sync stats = %+v, want %d sends/receives", d, st, steps)
		}
	}
}

func TestScaledLSTMMatchesReference(t *testing.T) { runScaledPair(t, kernels.LSTM, 32, 4, false) }
func TestScaledGRUMatchesReference(t *testing.T)  { runScaledPair(t, kernels.GRU, 32, 4, false) }
func TestScaledLSTMReordered(t *testing.T)        { runScaledPair(t, kernels.LSTM, 32, 5, true) }
func TestScaledGRUReordered(t *testing.T)         { runScaledPair(t, kernels.GRU, 32, 5, true) }
func TestScaledLongerSequence(t *testing.T)       { runScaledPair(t, kernels.LSTM, 24, 10, true) }

func TestBuildScaledPairErrors(t *testing.T) {
	w := kernels.RandomWeights(kernels.GRU, 32, 1)
	if _, err := BuildScaledPair(w, 0, 1); err == nil {
		t.Error("zero steps must fail")
	}
	wOdd := kernels.RandomWeights(kernels.GRU, 32, 1)
	wOdd.Hidden = 33
	if _, err := BuildScaledPair(wOdd, 1, 1); err == nil {
		t.Error("odd hidden must fail")
	}
}

// The reordering tool must actually move the receive later: after
// reordering, the number of instructions between a receive and the next
// dependent use must grow or stay equal, and the program must be a
// permutation with identical multiset of instructions.
func TestReorderMovesReceiveLater(t *testing.T) {
	w := kernels.RandomWeights(kernels.LSTM, 32, 1)
	sp, err := BuildScaledPair(w, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	send, recv := uint32(sp.SyncCfg.SendAddr), uint32(sp.SyncCfg.RecvAddr)
	orig := sp.Progs[0]
	re := ReorderForOverlap(orig, send, recv)
	if len(re) != len(orig) {
		t.Fatalf("length changed: %d vs %d", len(re), len(orig))
	}
	count := func(p isa.Program) map[isa.Instr]int {
		m := map[isa.Instr]int{}
		for _, i := range p {
			m[i]++
		}
		return m
	}
	co, cr := count(orig), count(re)
	for k, v := range co {
		if cr[k] != v {
			t.Fatalf("not a permutation: %v", k)
		}
	}
	recvPos := func(p isa.Program) []int {
		var out []int
		for i, ins := range p {
			if ins.Op == isa.OpVRead && ins.Imm == recv {
				out = append(out, i)
			}
		}
		return out
	}
	po, pr := recvPos(orig), recvPos(re)
	if len(po) != len(pr) || len(po) == 0 {
		t.Fatal("receive count changed")
	}
	moved := false
	for i := range po {
		if pr[i] < po[i] {
			t.Errorf("receive %d moved earlier: %d -> %d", i, po[i], pr[i])
		}
		if pr[i] > po[i] {
			moved = true
		}
	}
	if !moved {
		t.Error("no receive moved later; overlap gained nothing")
	}
}

// Fig. 11 shape: the overlap technique fully hides the swept added latency
// for the LSTM, hides it up to a mid-sweep crossover for the small GRU,
// and cannot hide it for the large GRU.
func TestFig11Shape(t *testing.T) {
	p := perf.DefaultParams()
	base := netmodel.DefaultRingLink()
	budget := func(kind kernels.RNNKind, h int) time.Duration {
		spec := kernels.LayerSpec{Kind: kind, Hidden: h, TimeSteps: 1}
		b, err := HiddenLatencyBudget(spec, "XCVU37P", p, base)
		if err != nil {
			t.Fatalf("%v h=%d: %v", kind, h, err)
		}
		return b
	}
	lstm := budget(kernels.LSTM, 1024)
	gruSmall := budget(kernels.GRU, 1024)
	gruLarge := budget(kernels.GRU, 2560)
	if lstm < time.Microsecond {
		t.Errorf("LSTM budget = %v, must cover the full 1us sweep", lstm)
	}
	if gruSmall < 300*time.Nanosecond || gruSmall > 900*time.Nanosecond {
		t.Errorf("small GRU budget = %v, want a mid-sweep crossover (~0.6us)", gruSmall)
	}
	if gruLarge > 300*time.Nanosecond {
		t.Errorf("large GRU budget = %v, must be (near) zero", gruLarge)
	}
	if !(gruLarge < gruSmall && gruSmall < lstm) {
		t.Errorf("budget ordering wrong: %v < %v < %v", gruLarge, gruSmall, lstm)
	}
}

func TestTwoFPGAStepMonotoneInAddedLatency(t *testing.T) {
	p := perf.DefaultParams()
	spec := kernels.LayerSpec{Kind: kernels.GRU, Hidden: 2560, TimeSteps: 1}
	prev := time.Duration(0)
	for _, added := range []time.Duration{0, 200, 400, 600, 800, 1000} {
		link := netmodel.DefaultRingLink()
		link.AddedLatency = added * time.Nanosecond
		step, _, _, err := TwoFPGAStep(spec, "XCVU37P", p, TwoFPGAOptions{Overlap: true, Link: link})
		if err != nil {
			t.Fatal(err)
		}
		if step < prev {
			t.Errorf("step time decreased with added latency at %v", added)
		}
		prev = step
	}
}

func TestOverlapNeverWorse(t *testing.T) {
	p := perf.DefaultParams()
	for _, spec := range []kernels.LayerSpec{
		{Kind: kernels.LSTM, Hidden: 1024, TimeSteps: 10},
		{Kind: kernels.GRU, Hidden: 1024, TimeSteps: 10},
		{Kind: kernels.GRU, Hidden: 2560, TimeSteps: 10},
	} {
		link := netmodel.DefaultRingLink()
		link.AddedLatency = 600 * time.Nanosecond
		with, err := TwoFPGALatency(spec, "XCVU37P", p, TwoFPGAOptions{Overlap: true, Link: link})
		if err != nil {
			t.Fatal(err)
		}
		without, err := TwoFPGALatency(spec, "XCVU37P", p, TwoFPGAOptions{Overlap: false, Link: link})
		if err != nil {
			t.Fatal(err)
		}
		if with > without {
			t.Errorf("%v: overlap (%v) worse than naive (%v)", spec, with, without)
		}
	}
}

func TestTwoFPGAErrors(t *testing.T) {
	p := perf.DefaultParams()
	spec := kernels.LayerSpec{Kind: kernels.GRU, Hidden: 1024, TimeSteps: 1}
	if _, _, _, err := TwoFPGAStep(spec, "bogus", p, TwoFPGAOptions{Link: netmodel.DefaultRingLink()}); err == nil {
		t.Error("unknown device must fail")
	}
	bad := netmodel.Link{}
	if _, _, _, err := TwoFPGAStep(spec, "XCVU37P", p, TwoFPGAOptions{Link: bad}); err == nil {
		t.Error("zero-bandwidth link must fail")
	}
	if _, err := perf.MinTilesScaled(spec, "XCVU37P", 0); err == nil {
		t.Error("zero devices must fail")
	}
}

// Scaled programs must pass the static validator, with the sync module's
// trapped addresses declared.
func TestScaledProgramsValidate(t *testing.T) {
	for _, kind := range []kernels.RNNKind{kernels.LSTM, kernels.GRU} {
		w := kernels.RandomWeights(kind, 64, 3)
		sp, err := BuildScaledPair(w, 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		spec := isa.MachineSpec{
			VRegs:         sp.Cfg.VRegs,
			MRegs:         sp.Cfg.MRegs,
			DRAMWords:     sp.Cfg.DRAMWords,
			InstrBufBytes: sp.Cfg.InstrBufBytes,
			TrappedAddrs:  []uint32{uint32(sp.SyncCfg.SendAddr), uint32(sp.SyncCfg.RecvAddr)},
		}
		for d := 0; d < 2; d++ {
			prog := ReorderForOverlap(sp.Progs[d], uint32(sp.SyncCfg.SendAddr), uint32(sp.SyncCfg.RecvAddr))
			if issues := isa.Validate(prog, spec); len(issues) != 0 {
				t.Errorf("%v device %d: %d issues; first: %v", kind, d, len(issues), issues[0])
			}
		}
	}
}

// The reordered schedule must realize the timing model's overlap window:
// at least the modelled number of x-dependent matrix products execute
// between the send and the blocking receive of every steady-state step.
func TestMeasuredOverlapMatchesModel(t *testing.T) {
	for _, tc := range []struct {
		kind      kernels.RNNKind
		modelMVMs int // overlapGates assumed by the latency model
	}{
		{kernels.LSTM, 4},
		{kernels.GRU, 2},
	} {
		w := kernels.RandomWeights(tc.kind, 32, 1)
		sp, err := BuildScaledPair(w, 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		send, recv := uint32(sp.SyncCfg.SendAddr), uint32(sp.SyncCfg.RecvAddr)
		re := ReorderForOverlap(sp.Progs[0], send, recv)
		overlaps := OverlapMVMs(re, send, recv)
		if len(overlaps) != sp.Spec.TimeSteps {
			t.Fatalf("%v: %d overlap windows for %d steps", tc.kind, len(overlaps), sp.Spec.TimeSteps)
		}
		// The last step has no successor to overlap with; every earlier
		// step must cover at least the model's window.
		for i, n := range overlaps[:len(overlaps)-1] {
			if n < tc.modelMVMs {
				t.Errorf("%v step %d: %d MVMs overlap the transfer, model assumes >= %d",
					tc.kind, i, n, tc.modelMVMs)
			}
		}
		// Before reordering there is nothing between send and receive.
		for _, n := range OverlapMVMs(sp.Progs[0], send, recv) {
			if n != 0 {
				t.Errorf("%v: unreordered program already overlaps %d MVMs", tc.kind, n)
			}
		}
	}
}
