// Package scaleout implements the paper's optimization for scale-out
// acceleration (§2.3): instead of splitting one accelerator across FPGAs,
// the accelerator is scaled down into smaller instances (fewer data
// processing units), one per FPGA; a template synchronization module traps
// DRAM reads/writes to predefined addresses to move vectors over the
// inter-FPGA network and to realize barrier synchronization (Fig. 8); and
// custom tools insert the communication instructions and reorder the
// program under dependency constraints so communication overlaps
// computation.
package scaleout

import (
	"errors"
	"fmt"
	"sync"

	"mlvfpga/internal/accel"
	"mlvfpga/internal/fp16"
)

// SyncStats counts the template module's traffic.
type SyncStats struct {
	// Sends/Receives are trapped transfers.
	Sends, Receives int
	// WordsSent/WordsReceived count float16 words moved.
	WordsSent, WordsReceived int64
}

// SyncModule is the parameterized template module of Fig. 8b, interposed
// on an accelerator's DRAM port. A write to SendAddr forwards the data
// entry to the peer accelerator over the inter-FPGA network; a read from
// RecvAddr blocks until the peer's data arrives (barrier synchronization
// for an in-order processor) and returns it combined with the locally
// produced half according to the index register. Both trapped requests are
// invalidated against the real DRAM to preserve functional correctness.
//
// The module's parameters — buffer width, the predefined addresses and the
// index register — are fixed at offline compilation time (§2.3), i.e. at
// construction.
type SyncModule struct {
	inner accel.DRAM

	sendAddr, recvAddr int
	halfWords          int
	// index is the position of the local half in the combined vector:
	// 0 = local half first, 1 = peer half first.
	index int

	peerIn  <-chan []fp16.Num
	peerOut chan<- []fp16.Num
	lastOwn []fp16.Num
	abort   *abortState

	stats SyncStats
}

// abortState propagates a peer failure so barrier waits unblock instead of
// deadlocking when one device dies mid-chain.
type abortState struct {
	once sync.Once
	ch   chan struct{}
}

func newAbortState() *abortState { return &abortState{ch: make(chan struct{})} }

func (a *abortState) abort() { a.once.Do(func() { close(a.ch) }) }

// ErrPeerAborted is returned from a blocked send/receive when the peer
// accelerator aborted its chain.
var ErrPeerAborted = errors.New("scaleout: peer accelerator aborted")

// Config parameterizes one side of a sync pair.
type Config struct {
	// SendAddr and RecvAddr are the predefined (out-of-range) DRAM word
	// addresses the module traps.
	SendAddr, RecvAddr int
	// HalfWords is the exchanged vector length (the scaled-down
	// accelerator's share of the hidden dimension).
	HalfWords int
}

// Validate checks the parameters.
func (c Config) Validate() error {
	if c.HalfWords <= 0 {
		return fmt.Errorf("scaleout: HalfWords = %d", c.HalfWords)
	}
	if c.SendAddr == c.RecvAddr {
		return errors.New("scaleout: send and receive addresses collide")
	}
	return nil
}

// NewSyncPair interposes sync modules over two accelerators' DRAMs,
// connected back-to-back over the inter-FPGA network. Device 0 holds the
// first half of every exchanged vector, device 1 the second (the index
// registers are configured accordingly).
func NewSyncPair(inner0, inner1 accel.DRAM, cfg Config) (*SyncModule, *SyncModule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	// Buffered channels: both sides send before receiving, so capacity 1
	// prevents the symmetric-send deadlock.
	ab := make(chan []fp16.Num, 1)
	ba := make(chan []fp16.Num, 1)
	shared := newAbortState()
	mk := func(inner accel.DRAM, in <-chan []fp16.Num, out chan<- []fp16.Num, index int) *SyncModule {
		return &SyncModule{
			inner:    inner,
			sendAddr: cfg.SendAddr, recvAddr: cfg.RecvAddr,
			halfWords: cfg.HalfWords, index: index,
			peerIn: in, peerOut: out, abort: shared,
		}
	}
	return mk(inner0, ba, ab, 0), mk(inner1, ab, ba, 1), nil
}

// Stats returns the traffic counters.
func (s *SyncModule) Stats() SyncStats { return s.stats }

// Abort unblocks any barrier waits on either side of the pair; further
// sync accesses fail with ErrPeerAborted. Call when one device's chain
// errors out so the other does not deadlock.
func (s *SyncModule) Abort() { s.abort.abort() }

// WriteWords traps writes to the send address (forwarding to the peer and
// invalidating the DRAM write) and passes everything else through.
func (s *SyncModule) WriteWords(addr int, vals []fp16.Num) error {
	if addr == s.sendAddr {
		if len(vals) != s.halfWords {
			return fmt.Errorf("scaleout: send of %d words, module configured for %d", len(vals), s.halfWords)
		}
		cp := append([]fp16.Num{}, vals...)
		s.lastOwn = cp
		select {
		case s.peerOut <- cp:
		case <-s.abort.ch:
			return ErrPeerAborted
		}
		s.stats.Sends++
		s.stats.WordsSent += int64(len(vals))
		return nil
	}
	return s.inner.WriteWords(addr, vals)
}

// ReadWords traps reads from the receive address: it blocks until the peer
// half arrives (barrier) and returns the full vector assembled from the
// local and peer halves per the index register.
func (s *SyncModule) ReadWords(addr, n int) ([]fp16.Num, error) {
	if addr == s.recvAddr {
		if n != 2*s.halfWords {
			return nil, fmt.Errorf("scaleout: receive of %d words, want %d", n, 2*s.halfWords)
		}
		if s.lastOwn == nil {
			return nil, errors.New("scaleout: receive before any send (no local half buffered)")
		}
		var peer []fp16.Num
		select {
		case peer = <-s.peerIn:
		case <-s.abort.ch:
			return nil, ErrPeerAborted
		}
		s.stats.Receives++
		s.stats.WordsReceived += int64(len(peer))
		out := make([]fp16.Num, 0, 2*s.halfWords)
		if s.index == 0 {
			out = append(append(out, s.lastOwn...), peer...)
		} else {
			out = append(append(out, peer...), s.lastOwn...)
		}
		return out, nil
	}
	return s.inner.ReadWords(addr, n)
}
