package scaleout

import (
	"fmt"
	"sync"

	"mlvfpga/internal/accel"
	"mlvfpga/internal/fp16"
	"mlvfpga/internal/isa"
	"mlvfpga/internal/kernels"
)

// This file holds the two custom tools of §2.3:
//
//   - the scale-down transform / instruction-insertion tool, which builds
//     per-device programs for a 2-FPGA deployment (each device keeps the
//     unmodified control path but half the data processing units and half
//     of every weight matrix's rows) and inserts the DRAM-mapped send/
//     receive instructions;
//   - the instruction reordering tool, which moves the blocking receive as
//     late as dependencies allow (and the send as early as possible) so
//     the inter-FPGA transfer overlaps the next step's x-dependent
//     computation.

// ScaledPair is a 2-FPGA deployment of one RNN layer: each device runs a
// scaled-down accelerator computing half of the hidden dimension.
type ScaledPair struct {
	Spec  kernels.LayerSpec
	Progs [2]isa.Program
	// Images are the per-device initial DRAM contents (the device's rows
	// of every matrix plus its bias halves).
	Images [2][]fp16.Num
	// Cfg is the per-device machine configuration (halved tile count,
	// full VecLen — the exchange reassembles full h vectors).
	Cfg accel.Config
	// SyncCfg parameterizes the template modules. The trap addresses are
	// intentionally out of the DRAM range, as in the paper.
	SyncCfg Config

	inputBase, outputBase int
}

// matrix register order must match kernels' convention: W* then U*.
func matNames(kind kernels.RNNKind) []string {
	if kind == kernels.LSTM {
		return []string{"Wi", "Wf", "Wo", "Wc", "Ui", "Uf", "Uo", "Uc"}
	}
	return []string{"Wz", "Wr", "Wn", "Uz", "Ur", "Un"}
}

func biasNames(kind kernels.RNNKind) []string {
	if kind == kernels.LSTM {
		return []string{"bi", "bf", "bo", "bc"}
	}
	return []string{"bz", "br", "bn"}
}

// BuildScaledPair compiles a layer for two scaled-down accelerators with
// tilesPerDevice tile engines each. The hidden dimension must be even.
func BuildScaledPair(w *kernels.Weights, timeSteps, tilesPerDevice int) (*ScaledPair, error) {
	if timeSteps <= 0 {
		return nil, fmt.Errorf("scaleout: timeSteps = %d", timeSteps)
	}
	if w.Kind != kernels.LSTM && w.Kind != kernels.GRU {
		return nil, fmt.Errorf("scaleout: no scaled step program for %v", w.Kind)
	}
	h := w.Hidden
	if h%2 != 0 {
		return nil, fmt.Errorf("scaleout: hidden dimension %d must be even", h)
	}
	h2 := h / 2
	spec := kernels.LayerSpec{Kind: w.Kind, Hidden: h, TimeSteps: timeSteps}
	cfg := kernels.DefaultConfig(spec, tilesPerDevice)
	sp := &ScaledPair{Spec: spec, Cfg: cfg}

	mats := matNames(w.Kind)
	biases := biasNames(w.Kind)

	// Per-device DRAM layout: half matrices (h2*h), half biases (h2),
	// inputs (full h per step), outputs (own half per step).
	next := 0
	alloc := func(words int) int { a := next; next += words; return a }
	matAddr := map[string]int{}
	for _, name := range mats {
		matAddr[name] = alloc(h2 * h)
	}
	biasAddr := map[string]int{}
	for _, name := range biases {
		biasAddr[name] = alloc(h2)
	}
	sp.inputBase = alloc(h * timeSteps)
	sp.outputBase = alloc(h2 * timeSteps)
	if next > cfg.DRAMWords {
		return nil, fmt.Errorf("scaleout: layer needs %d DRAM words, have %d", next, cfg.DRAMWords)
	}
	sp.SyncCfg = Config{
		SendAddr:  cfg.DRAMWords,     // predefined out-of-range addresses
		RecvAddr:  cfg.DRAMWords + 1, // (paper §2.3)
		HalfWords: h2,
	}

	for dev := 0; dev < 2; dev++ {
		image := make([]fp16.Num, sp.inputBase)
		for _, name := range mats {
			full := w.M[name]
			rows := full[dev*h2*h : (dev+1)*h2*h]
			copy(image[matAddr[name]:], fp16.FromSlice64(rows))
		}
		for _, name := range biases {
			half := w.B[name][dev*h2 : (dev+1)*h2]
			copy(image[biasAddr[name]:], fp16.FromSlice64(half))
		}
		sp.Images[dev] = image
	}

	// The program is identical on both devices (their DRAM contents and
	// sync index registers differ).
	var p isa.Program
	for i, name := range mats {
		p = append(p, isa.Instr{Op: isa.OpMRead, Dst: uint8(i), Imm: uint32(matAddr[name])})
	}
	for i, name := range biases {
		// Bias halves load with the half-length mode (Src2 = 1).
		p = append(p, isa.Instr{Op: isa.OpVRead, Dst: uint8(3 + i), Src2: 1, Imm: uint32(biasAddr[name])})
	}
	p = append(p, isa.Instr{Op: isa.OpVConst, Dst: 1, Imm: 0}) // h_full = 0
	switch w.Kind {
	case kernels.LSTM:
		p = append(p, isa.Instr{Op: isa.OpVConst, Dst: 2, Src1: 1, Imm: 0}) // c_half = 0
	case kernels.GRU:
		p = append(p, isa.Instr{Op: isa.OpVConst, Dst: 12, Src1: 1, Imm: 0}) // h_own = 0
	}

	for t := 0; t < timeSteps; t++ {
		p = append(p, isa.Instr{Op: isa.OpVRead, Dst: 0, Imm: uint32(sp.InputAddr(t))})
		switch w.Kind {
		case kernels.LSTM:
			p = append(p, scaledLSTMStep()...)
		case kernels.GRU:
			p = append(p, scaledGRUStep()...)
		}
		// Insertion tool: own half to the peer (trapped), own half to the
		// local output region, full h back from the sync module (barrier).
		own := uint8(14)
		if w.Kind == kernels.GRU {
			own = 12
		}
		p = append(p,
			isa.Instr{Op: isa.OpVWrite, Src1: own, Imm: uint32(sp.SyncCfg.SendAddr)},
			isa.Instr{Op: isa.OpVWrite, Src1: own, Imm: uint32(sp.OutputAddr(t))},
			isa.Instr{Op: isa.OpVRead, Dst: 1, Imm: uint32(sp.SyncCfg.RecvAddr)},
		)
	}
	p = append(p, isa.Instr{Op: isa.OpEndChain})
	sp.Progs[0] = p
	sp.Progs[1] = append(isa.Program{}, p...)
	return sp, nil
}

// scaledLSTMStep: as kernels.lstmStep but every gate is h/2 long (the
// device's matrix rows) and the new own half lands in r14. The step is
// scheduled x-first: every W*x product precedes the first U*h product, so
// the reordering tool can sink the blocking receive past the whole
// x-dependent prefix ("maximally overlap", §2.3).
// r0=x (full h), r1=h (full), r2=c (half), r3..r6 bias halves.
func scaledLSTMStep() isa.Program {
	I := func(op isa.Opcode, d, s1, s2 uint8) isa.Instr {
		return isa.Instr{Op: op, Dst: d, Src1: s1, Src2: s2}
	}
	return isa.Program{
		// x-dependent prefix: all four W*x products.
		I(isa.OpMVMul, 7, 0, 0),  // Wi x -> h/2
		I(isa.OpMVMul, 8, 1, 0),  // Wf x
		I(isa.OpMVMul, 9, 2, 0),  // Wo x
		I(isa.OpMVMul, 10, 3, 0), // Wc x
		// h-dependent products and gate math.
		I(isa.OpMVMul, 11, 4, 1), // Ui h
		I(isa.OpVVAdd, 7, 7, 11),
		I(isa.OpMVMul, 11, 5, 1), // Uf h
		I(isa.OpVVAdd, 8, 8, 11),
		I(isa.OpMVMul, 11, 6, 1), // Uo h
		I(isa.OpVVAdd, 9, 9, 11),
		I(isa.OpMVMul, 11, 7, 1), // Uc h
		I(isa.OpVVAdd, 10, 10, 11),
		I(isa.OpVVAdd, 7, 7, 3),
		I(isa.OpVSigm, 7, 7, 0), // i
		I(isa.OpVVAdd, 8, 8, 4),
		I(isa.OpVSigm, 8, 8, 0), // f
		I(isa.OpVVAdd, 9, 9, 5),
		I(isa.OpVSigm, 9, 9, 0), // o
		I(isa.OpVVAdd, 10, 10, 6),
		I(isa.OpVTanh, 10, 10, 0), // g
		I(isa.OpVVMul, 11, 8, 2),  // f*c
		I(isa.OpVVMul, 12, 7, 10), // i*g
		I(isa.OpVVAdd, 2, 11, 12), // c'
		I(isa.OpVTanh, 13, 2, 0),
		I(isa.OpVVMul, 14, 9, 13), // own half of h'
	}
}

// scaledGRUStep: r12 holds the device's own half of h across steps
// (needed for z .* h, which uses only local elements). Scheduled x-first,
// as for the LSTM.
func scaledGRUStep() isa.Program {
	const one = 0x3C00
	I := func(op isa.Opcode, d, s1, s2 uint8) isa.Instr {
		return isa.Instr{Op: op, Dst: d, Src1: s1, Src2: s2}
	}
	return isa.Program{
		// x-dependent prefix: all three W*x products.
		I(isa.OpMVMul, 7, 0, 0), // Wz x
		I(isa.OpMVMul, 8, 1, 0), // Wr x
		I(isa.OpMVMul, 9, 2, 0), // Wn x
		// h-dependent gate math.
		I(isa.OpMVMul, 10, 3, 1), // Uz h
		I(isa.OpVVAdd, 7, 7, 10),
		I(isa.OpVVAdd, 7, 7, 3),
		I(isa.OpVSigm, 7, 7, 0),  // z
		I(isa.OpMVMul, 10, 4, 1), // Ur h
		I(isa.OpVVAdd, 8, 8, 10),
		I(isa.OpVVAdd, 8, 8, 4),
		I(isa.OpVSigm, 8, 8, 0),  // r
		I(isa.OpMVMul, 10, 5, 1), // Un h
		I(isa.OpVVMul, 10, 8, 10),
		I(isa.OpVVAdd, 9, 9, 10),
		I(isa.OpVVAdd, 9, 9, 5),
		I(isa.OpVTanh, 9, 9, 0), // n
		{Op: isa.OpVRsub, Dst: 10, Src1: 7, Imm: one},
		I(isa.OpVVMul, 10, 10, 9),
		I(isa.OpVVMul, 11, 7, 12), // z .* h_own
		I(isa.OpVVAdd, 12, 10, 11),
	}
}

// OverlapMVMs measures, per steady-state timestep of a reordered program,
// how many matrix-vector products execute between the sync send and the
// blocking receive — the work that actually overlaps the inter-FPGA
// transfer. It validates the timing model's overlap-window assumption
// against the real instruction schedule.
func OverlapMVMs(p isa.Program, sendAddr, recvAddr uint32) []int {
	var out []int
	counting := false
	count := 0
	for _, ins := range p {
		switch {
		case ins.Op == isa.OpVWrite && ins.Imm == sendAddr:
			counting = true
			count = 0
		case ins.Op == isa.OpVRead && ins.Imm == recvAddr:
			if counting {
				out = append(out, count)
			}
			counting = false
		case counting && ins.Op == isa.OpMVMul:
			count++
		}
	}
	return out
}

// InputAddr returns the DRAM address of x_t (same on both devices).
func (sp *ScaledPair) InputAddr(t int) int { return sp.inputBase + t*sp.Spec.Hidden }

// OutputAddr returns where a device stores its own half of h_t.
func (sp *ScaledPair) OutputAddr(t int) int { return sp.outputBase + t*sp.Spec.Hidden/2 }

// NewMachines builds the two linked machines with their DRAM images and
// sync modules installed.
func (sp *ScaledPair) NewMachines() ([2]*accel.Machine, [2]*SyncModule, error) {
	var ms [2]*accel.Machine
	var syncs [2]*SyncModule
	mem0 := accel.NewMemory(sp.Cfg.DRAMWords)
	mem1 := accel.NewMemory(sp.Cfg.DRAMWords)
	s0, s1, err := NewSyncPair(mem0, mem1, sp.SyncCfg)
	if err != nil {
		return ms, syncs, err
	}
	syncs[0], syncs[1] = s0, s1
	for dev := 0; dev < 2; dev++ {
		m, err := accel.NewWithDRAM(sp.Cfg, syncs[dev])
		if err != nil {
			return ms, syncs, err
		}
		if err := m.DRAMPort().WriteWords(0, sp.Images[dev]); err != nil {
			return ms, syncs, err
		}
		h2 := sp.Spec.Hidden / 2
		nMats := len(matNames(sp.Spec.Kind))
		for i := 0; i < nMats; i++ {
			if err := m.ConfigureMatrix(i, h2, sp.Spec.Hidden); err != nil {
				return ms, syncs, err
			}
		}
		ms[dev] = m
	}
	return ms, syncs, nil
}

// SetInput writes x_t into both devices' DRAM (the input is broadcast).
func (sp *ScaledPair) SetInput(ms [2]*accel.Machine, t int, x []float64) error {
	if len(x) != sp.Spec.Hidden {
		return fmt.Errorf("scaleout: input length %d, want %d", len(x), sp.Spec.Hidden)
	}
	words := fp16.FromSlice64(x)
	for dev := 0; dev < 2; dev++ {
		if err := ms[dev].DRAMPort().WriteWords(sp.InputAddr(t), words); err != nil {
			return err
		}
	}
	return nil
}

// ReadOutput reassembles h_t from the two devices' output regions.
func (sp *ScaledPair) ReadOutput(ms [2]*accel.Machine, t int) ([]float64, error) {
	h2 := sp.Spec.Hidden / 2
	out := make([]float64, 0, sp.Spec.Hidden)
	for dev := 0; dev < 2; dev++ {
		words, err := ms[dev].DRAMPort().ReadWords(sp.OutputAddr(t), h2)
		if err != nil {
			return nil, err
		}
		out = append(out, fp16.ToSlice64(words)...)
	}
	return out, nil
}

// Run executes both devices concurrently (the sync modules provide the
// barrier) and returns the first error as a *DeviceError naming the
// failed member. A failing device aborts the sync pair so its peer
// unblocks instead of deadlocking on the barrier.
func (sp *ScaledPair) Run(ms [2]*accel.Machine) error {
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for dev := 0; dev < 2; dev++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			errs[d] = ms[d].Run(sp.Progs[d])
			if errs[d] != nil {
				if s, ok := accel.UnwrapDRAM(ms[d].DRAMPort()).(*SyncModule); ok {
					s.Abort()
				}
			}
		}(dev)
	}
	wg.Wait()
	return firstDeviceError(errs)
}

// ReorderForOverlap is the §2.3 reordering tool: under the dependency
// constraints of isa.DependsOn it sinks blocking receive reads as late as
// possible and hoists sends as early as possible, so the inter-FPGA
// transfer overlaps the next timestep's input-dependent computation. The
// result is a dependency-preserving permutation of the input.
func ReorderForOverlap(p isa.Program, sendAddr, recvAddr uint32) isa.Program {
	out := append(isa.Program{}, p...)
	isRecv := func(i isa.Instr) bool { return i.Op == isa.OpVRead && i.Imm == recvAddr }
	isSend := func(i isa.Instr) bool { return i.Op == isa.OpVWrite && i.Imm == sendAddr }
	// canSwap reports whether adjacent a;b may become b;a. DRAM-ordering in
	// DependsOn is conservative for the trapped sync addresses: a sync
	// receive commutes with ordinary DRAM reads, and the paper's module
	// gives the trapped addresses no aliasing with real DRAM, so we relax
	// the DRAM edge when exactly one side is a sync access and the other
	// does not touch the sync module.
	canSwap := func(a, b isa.Instr) bool {
		if a.Op == isa.OpEndChain || b.Op == isa.OpEndChain {
			return false // the chain terminator is a scheduling barrier
		}
		syncA, syncB := isRecv(a) || isSend(a), isRecv(b) || isSend(b)
		if syncA && syncB {
			return false // keep send/receive order: the barrier protocol
		}
		if syncA != syncB {
			// Register dependences still bind.
			return !regDeps(a, b)
		}
		return !isa.DependsOn(a, b)
	}
	changed := true
	for pass := 0; changed && pass < len(out); pass++ {
		changed = false
		// Sink receives.
		for i := 0; i+1 < len(out); i++ {
			if isRecv(out[i]) && canSwap(out[i], out[i+1]) {
				out[i], out[i+1] = out[i+1], out[i]
				changed = true
			}
		}
		// Hoist sends.
		for i := len(out) - 1; i > 0; i-- {
			if isSend(out[i]) && canSwap(out[i-1], out[i]) {
				out[i-1], out[i] = out[i], out[i-1]
				changed = true
			}
		}
	}
	return out
}

// regDeps reports register-file dependences between two instructions
// (ignoring DRAM ordering).
func regDeps(a, b isa.Instr) bool {
	inter := func(x, y []int) bool {
		for _, i := range x {
			for _, j := range y {
				if i == j {
					return true
				}
			}
		}
		return false
	}
	return inter(a.Writes(), b.Reads()) || inter(a.Reads(), b.Writes()) || inter(a.Writes(), b.Writes())
}
