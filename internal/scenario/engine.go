package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"mlvfpga/internal/simtest"
	"mlvfpga/internal/wdsl"
)

// settle rounds after the described duration: heartbeats + ticks that let
// evacuations and retry backoffs quiesce before the stranded audit (the
// period must comfortably exceed the control plane's max backoff).
const (
	settleRounds = 12
	settlePeriod = time.Second
)

// minService floors the queue model's service time, so a lease whose
// modelled latency rounds to zero still accumulates backlog.
const minService = 100 * time.Microsecond

// lease is one deployed serving endpoint in the engine's model.
type leaseInfo struct {
	id     int
	model  string
	tenant string
	class  string
	// service is the queue model's per-request service time (the lease's
	// modelled inference latency at deploy time).
	service time.Duration
}

// arrival is one offered request, priced by the queue plane and
// optionally executed on the stack.
type arrival struct {
	at      time.Duration
	block   int // traffic block index
	seq     int // sequence within the block
	tenant  string
	class   string
	lease   int // index into leases
	sampled bool
}

// Run executes one compiled scenario and returns its SLO report. The
// report is a pure function of (spec, name): same spec and seed reproduce
// the same trace hash and the same report bytes.
func Run(spec *wdsl.Spec, name string) (*Report, error) {
	ir := spec.Scenario
	if ir == nil {
		return nil, fmt.Errorf("scenario: spec %q has no scenario block", name)
	}
	if len(ir.Deploys) == 0 {
		return nil, fmt.Errorf("scenario: spec %q deploys nothing", name)
	}

	o := simtest.DefaultOptions(ir.Seed)
	o.Cluster = ir.Cluster
	o.Tenants = spec.Tenants
	o.Infer.Seed = ir.Seed
	classOf := map[string]string{}
	for _, t := range spec.Tenants {
		classOf[t.ID] = t.Class.String()
	}

	stack, err := simtest.NewStack(o)
	if err != nil {
		return nil, err
	}
	defer stack.Close()
	eng := stack.Engine()

	// Deploy phase (virtual t=0): every replica of every layer of every
	// deployed model becomes a lease. A shed deploy is a spec error (the
	// described fleet cannot host the described models), not a violation.
	var leases []leaseInfo
	leasesByModel := map[string][]int{}
	for _, d := range ir.Deploys {
		m := spec.ByName[d.Model]
		for rep := 0; rep < d.Replicas; rep++ {
			for li, layer := range m.Layers {
				l, ok := stack.Deploy(layer.Rnn, d.Tenant)
				if !ok {
					return nil, fmt.Errorf("scenario: deploy %q replica %d layer %d: invariant violation: %v",
						d.Model, rep, li, stack.Violation())
				}
				if l == nil {
					return nil, fmt.Errorf("scenario: deploy %q replica %d layer %d shed: fleet cannot host the described models",
						d.Model, rep, li)
				}
				svc, _ := stack.LeaseLatency(l.ID)
				if svc < minService {
					svc = minService
				}
				class := classOf[d.Tenant]
				if class == "" {
					class = "latency"
				}
				leasesByModel[d.Model] = append(leasesByModel[d.Model], len(leases))
				leases = append(leases, leaseInfo{
					id: l.ID, model: d.Model, tenant: d.Tenant, class: class, service: svc,
				})
			}
		}
	}

	// Storm victims: deterministic, disjoint across storms, never
	// reducing the beating fleet below two devices.
	devices := stack.Devices()
	rng := rand.New(rand.NewSource(ir.Seed ^ 0x5ca1ab1e))
	victims, err := stormVictims(ir.Storms, devices, rng)
	if err != nil {
		return nil, err
	}

	// Arrivals: generate each traffic block's point process, then merge.
	arrivals := genArrivals(ir, spec, classOf, leasesByModel, leases)

	// --- Lay the timeline onto the DES engine. ---
	for t := ir.Heartbeat; t <= ir.Duration; t += ir.Heartbeat {
		eng.At(t, func(time.Duration) { stack.HeartbeatAll() })
	}
	for t := ir.Tick; t <= ir.Duration; t += ir.Tick {
		eng.At(t, func(time.Duration) { stack.Tick() })
	}
	for si, st := range ir.Storms {
		vs := victims[si]
		kind := st.Kind
		eng.At(st.At, func(time.Duration) {
			for _, d := range vs {
				if kind == "kill" {
					stack.Kill(d)
				} else {
					stack.Drain(d)
				}
			}
		})
		if st.For > 0 {
			end := st.At + st.For
			if end > ir.Duration {
				end = ir.Duration
			}
			eng.At(end, func(time.Duration) {
				for _, d := range vs {
					if kind == "kill" {
						stack.Revive(d)
					} else {
						stack.Undrain(d)
					}
				}
			})
		}
	}

	// The queue plane prices every arrival now (it is virtual-time math,
	// not stack work); sampled, un-shed arrivals additionally execute on
	// the stack at their arrival instant.
	busyUntil := map[int]time.Duration{}
	tenants := map[string]*rollup{}
	classes := map[string]*rollup{}
	sampled := 0
	for i := range arrivals {
		a := &arrivals[i]
		li := leases[a.lease]
		tr := getRollup(tenants, a.tenant)
		cr := getRollup(classes, a.class)
		tr.requests++
		cr.requests++
		wait := busyUntil[a.lease] - a.at
		if wait < 0 {
			wait = 0
		}
		if wait > time.Duration(ir.QueueCap)*li.service {
			tr.shed++
			cr.shed++
			continue
		}
		busyUntil[a.lease] = a.at + wait + li.service
		sojournMs := float64(wait+li.service) / float64(time.Millisecond)
		tr.served++
		cr.served++
		tr.sojourns = append(tr.sojourns, sojournMs)
		cr.sojourns = append(cr.sojourns, sojournMs)
		if a.sampled {
			sampled++
			id, who, seed := li.id, a.tenant, int64(a.seq%8)
			eng.At(a.at, func(time.Duration) { stack.Serve(id, who, []int64{seed}) })
		}
	}

	for k := 0; k < settleRounds; k++ {
		eng.At(ir.Duration+time.Duration(k+1)*settlePeriod, func(time.Duration) { stack.Settle() })
	}

	eng.Run(0)
	stack.CheckStranded()

	// --- Assemble the report. ---
	rep := &Report{
		Spec:      name,
		Seed:      ir.Seed,
		Devices:   ir.DeviceCount,
		Duration:  ir.Duration.String(),
		Leases:    len(leases),
		Arrivals:  len(arrivals),
		Sampled:   sampled,
		TraceHash: fmt.Sprintf("%016x", stack.TraceHash()),
		Tenants:   map[string]*SLO{},
		Classes:   map[string]*SLO{},
		Counters:  stack.CounterDeltas(),
	}
	for name, r := range tenants {
		if name == "" {
			continue // tenantless runs roll up under Classes only
		}
		rep.Tenants[name] = r.slo()
	}
	for name, r := range classes {
		rep.Classes[name] = r.slo()
	}
	violatedFamily := ""
	if v := stack.Violation(); v != nil {
		rep.Violation = v.String()
		violatedFamily = v.Invariant
	}
	seen := false
	for _, fam := range simtest.InvariantFamilies() {
		verdict := Verdict{Invariant: fam, Status: "green"}
		if fam == violatedFamily {
			verdict.Status = "violated"
			verdict.Detail = rep.Violation
			seen = true
		}
		rep.Invariants = append(rep.Invariants, verdict)
	}
	if violatedFamily != "" && !seen {
		// Operation-error pseudo-families (deploy-error, ...) are not in
		// the fixed list; attach them so the verdicts stay consistent.
		rep.Invariants = append(rep.Invariants,
			Verdict{Invariant: violatedFamily, Status: "violated", Detail: rep.Violation})
	}
	rep.Valid = rep.Violation == ""
	return rep, nil
}

func getRollup(m map[string]*rollup, key string) *rollup {
	r := m[key]
	if r == nil {
		r = &rollup{}
		m[key] = r
	}
	return r
}

// stormVictims picks each storm's victim devices: deterministic under the
// seed, disjoint across storms, and never leaving fewer than two devices
// untouched by storms.
func stormVictims(storms []wdsl.StormIR, devices []int, rng *rand.Rand) ([][]int, error) {
	pool := append([]int(nil), devices...)
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	need := 0
	for _, s := range storms {
		need += s.Devices
	}
	if need > len(devices)-2 {
		return nil, fmt.Errorf("scenario: storms touch %d devices, fleet of %d must keep 2 untouched",
			need, len(devices))
	}
	out := make([][]int, len(storms))
	next := 0
	for i, s := range storms {
		vs := append([]int(nil), pool[next:next+s.Devices]...)
		sort.Ints(vs)
		out[i] = vs
		next += s.Devices
	}
	return out, nil
}

// genArrivals expands every traffic block into a merged, time-ordered
// arrival sequence. Each block gets its own derived PRNG, so adding a
// block never perturbs another block's draw sequence.
func genArrivals(ir *wdsl.ScenarioIR, spec *wdsl.Spec, classOf map[string]string,
	leasesByModel map[string][]int, leases []leaseInfo) []arrival {
	var out []arrival
	for bi, tr := range ir.Traffic {
		rng := rand.New(rand.NewSource(ir.Seed ^ (int64(bi+1) * 0x9e3779b9)))
		class := classOf[tr.Tenant]
		if class == "" {
			class = "latency"
		}
		pool := leasesByModel[tr.Model]
		seq := 0
		// Poisson process at peak rate; diurnal blocks thin it against
		// the day curve λ(t) = rate·(trough + (1−trough)·½(1−cos 2πt/T)).
		for t := time.Duration(0); ; {
			t += time.Duration(rng.ExpFloat64() / tr.Rate * float64(time.Second))
			if t >= ir.Duration {
				break
			}
			if tr.Shape == "diurnal" {
				phase := 2 * math.Pi * float64(t) / float64(tr.Period)
				accept := tr.Trough + (1-tr.Trough)*0.5*(1-math.Cos(phase))
				if rng.Float64() >= accept {
					continue
				}
			}
			out = append(out, arrival{
				at:      t,
				block:   bi,
				seq:     seq,
				tenant:  tr.Tenant,
				class:   class,
				lease:   pool[rng.Intn(len(pool))],
				sampled: rng.Float64() < ir.Sample,
			})
			seq++
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.block != b.block {
			return a.block < b.block
		}
		return a.seq < b.seq
	})
	return out
}
