// Package scenario runs compiled workload descriptions (internal/wdsl)
// against the simtest stack: the described fleet is built on the DES
// engine, deploys and arrival processes are laid onto the virtual
// timeline, fault storms kill and drain devices mid-run, and every event
// is audited against the full simtest invariant suite. The run emits a
// machine-readable SLO report.
//
// Two planes cooperate:
//
//   - The analytic queue plane prices every arrival: each lease is a FIFO
//     server whose service time is the lease's modelled inference latency,
//     arrivals queue or shed (when the backlog exceeds queue_cap service
//     times), and per-tenant/class latency percentiles and shed rates come
//     from this plane. It is a pure function of the spec, so reports are
//     bit-reproducible.
//   - The execution plane samples a fraction of arrivals (sample=) and
//     runs them as real inferences on the accelerator-simulator stack,
//     under the golden-equivalence, tenant-accounting and counter
//     invariants. Storms and control-plane reconciliation run here.
package scenario

import (
	"fmt"
	"math"
	"regexp"
	"sort"
)

// SLO aggregates one tenant's (or QoS class's) traffic outcome.
type SLO struct {
	Requests int     `json:"requests"`
	Served   int     `json:"served"`
	Shed     int     `json:"shed"`
	ShedRate float64 `json:"shed_rate"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

// Verdict is one invariant family's outcome over the whole run.
type Verdict struct {
	Invariant string `json:"invariant"`
	Status    string `json:"status"` // "green" | "violated"
	Detail    string `json:"detail,omitempty"`
}

// Report is the machine-readable outcome of one scenario run.
type Report struct {
	Spec     string `json:"spec"`
	Seed     int64  `json:"seed"`
	Devices  int    `json:"devices"`
	Duration string `json:"duration"`
	Leases   int    `json:"leases"`
	// Arrivals counts every offered request; Sampled the subset executed
	// as real inferences on the stack under test.
	Arrivals int `json:"arrivals"`
	Sampled  int `json:"sampled"`
	// TraceHash digests the deterministic event trace (16 hex digits);
	// identical spec+seed must reproduce it bit-for-bit.
	TraceHash string `json:"trace_hash"`
	// Tenants and Classes hold the SLO rollups; Classes keys are
	// "latency" and "batch" (only "latency" for tenantless runs).
	Tenants map[string]*SLO `json:"tenants"`
	Classes map[string]*SLO `json:"classes"`
	// Counters are the stack's metric deltas over the run (migrations,
	// preemption captures/restores, heartbeat misses, ...).
	Counters map[string]int64 `json:"counters"`
	// Invariants has one verdict per simtest invariant family.
	Invariants []Verdict `json:"invariants"`
	// Violation is the first invariant breach ("" when green).
	Violation string `json:"violation,omitempty"`
	// Valid is the run's overall verdict: true iff no invariant family
	// was violated. Validate() recomputes it from the rest of the report.
	Valid bool `json:"valid"`
}

var traceHashRE = regexp.MustCompile(`^[0-9a-f]{16}$`)

// Validate checks the report's internal consistency: the Valid flag, the
// per-SLO arithmetic, the rollup sums and the invariant verdicts must all
// agree. A report that passes Validate is self-consistent; a hand-edited
// or truncated one is rejected.
func (r *Report) Validate() error {
	if r.Devices <= 0 {
		return fmt.Errorf("scenario report: devices = %d", r.Devices)
	}
	if !traceHashRE.MatchString(r.TraceHash) {
		return fmt.Errorf("scenario report: malformed trace hash %q", r.TraceHash)
	}
	if r.Sampled > r.Arrivals {
		return fmt.Errorf("scenario report: sampled %d exceeds arrivals %d", r.Sampled, r.Arrivals)
	}
	violated := map[string]bool{}
	green := 0
	for _, v := range r.Invariants {
		switch v.Status {
		case "green":
			green++
		case "violated":
			violated[v.Invariant] = true
		default:
			return fmt.Errorf("scenario report: invariant %q has status %q", v.Invariant, v.Status)
		}
	}
	if len(r.Invariants) == 0 {
		return fmt.Errorf("scenario report: no invariant verdicts")
	}
	if (r.Violation == "") != (len(violated) == 0) {
		return fmt.Errorf("scenario report: violation %q inconsistent with %d violated verdicts",
			r.Violation, len(violated))
	}
	if want := r.Violation == ""; r.Valid != want {
		return fmt.Errorf("scenario report: valid=%v but violation=%q", r.Valid, r.Violation)
	}
	sumReq := 0
	for name, s := range r.Tenants {
		if err := s.check(name); err != nil {
			return err
		}
		sumReq += s.Requests
	}
	if len(r.Tenants) > 0 && sumReq != r.Arrivals {
		return fmt.Errorf("scenario report: tenant requests sum to %d, arrivals = %d", sumReq, r.Arrivals)
	}
	sumReq = 0
	for name, s := range r.Classes {
		if err := s.check("class " + name); err != nil {
			return err
		}
		sumReq += s.Requests
	}
	if sumReq != r.Arrivals {
		return fmt.Errorf("scenario report: class requests sum to %d, arrivals = %d", sumReq, r.Arrivals)
	}
	for _, key := range []string{"mlv_infers_served", "mlv_migrations", "mlv_snapshot_captures"} {
		if v, ok := r.Counters[key]; !ok || v < 0 {
			return fmt.Errorf("scenario report: counter %q = %d (present=%v)", key, v, ok)
		}
	}
	return nil
}

func (s *SLO) check(name string) error {
	if s.Requests != s.Served+s.Shed {
		return fmt.Errorf("scenario report: %s: %d requests != %d served + %d shed",
			name, s.Requests, s.Served, s.Shed)
	}
	wantRate := 0.0
	if s.Requests > 0 {
		wantRate = float64(s.Shed) / float64(s.Requests)
	}
	if math.Abs(s.ShedRate-wantRate) > 1e-9 {
		return fmt.Errorf("scenario report: %s: shed rate %v, want %v", name, s.ShedRate, wantRate)
	}
	if s.P50Ms < 0 || s.P99Ms < s.P50Ms {
		return fmt.Errorf("scenario report: %s: percentiles p50=%v p99=%v", name, s.P50Ms, s.P99Ms)
	}
	return nil
}

// percentile returns the q-quantile (0 < q <= 1) of the sorted sample.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// rollup accumulates sojourn samples for one tenant or class.
type rollup struct {
	requests int
	served   int
	shed     int
	sojourns []float64 // milliseconds
}

func (a *rollup) slo() *SLO {
	sort.Float64s(a.sojourns)
	rate := 0.0
	if a.requests > 0 {
		rate = float64(a.shed) / float64(a.requests)
	}
	return &SLO{
		Requests: a.requests,
		Served:   a.served,
		Shed:     a.shed,
		ShedRate: rate,
		P50Ms:    percentile(a.sojourns, 0.50),
		P99Ms:    percentile(a.sojourns, 0.99),
	}
}
