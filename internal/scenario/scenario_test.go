package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mlvfpga/internal/wdsl"
)

func loadSpec(t *testing.T, path string) *wdsl.Spec {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := wdsl.Parse(string(src))
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	spec, err := wdsl.Compile(f)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return spec
}

func compileSrc(t *testing.T, src string) *wdsl.Spec {
	t.Helper()
	f, err := wdsl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := wdsl.Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestCommittedScenarios runs every spec committed under
// testdata/scenarios to completion: all invariant families green, the
// report self-validates, and traffic actually flowed.
func TestCommittedScenarios(t *testing.T) {
	paths, err := filepath.Glob("../../testdata/scenarios/*.mlw")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no committed scenarios found: %v", err)
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			if testing.Short() && filepath.Base(path) == "diurnal-1000.mlw" {
				t.Skip("fleet-scale spec skipped in -short")
			}
			rep, err := Run(loadSpec(t, path), filepath.Base(path))
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Valid {
				t.Fatalf("scenario not green: %s", rep.Violation)
			}
			if err := rep.Validate(); err != nil {
				t.Fatal(err)
			}
			if rep.Arrivals == 0 || rep.Sampled == 0 || rep.Leases == 0 {
				t.Fatalf("no traffic flowed: %+v", rep)
			}
			for _, v := range rep.Invariants {
				if v.Status != "green" {
					t.Errorf("invariant %s: %s (%s)", v.Invariant, v.Status, v.Detail)
				}
			}
		})
	}
}

const detSmall = `
model "echo" { layer lstm hidden=64 steps=2 }
model "aft" { layer attention hidden=32 steps=4 }
tenant "lat-0" class=latency
tenant "bat-0" class=batch
scenario {
  seed     = 3
  duration = 5s
  sample   = 20%
  devices { XCVU37P = 8  XCKU115 = 2 }
  deploy "echo" tenant="lat-0" replicas=2
  deploy "aft" tenant="bat-0"
  traffic diurnal rate=16/s trough=25% period=2s tenant="lat-0" model="echo"
  traffic poisson rate=6/s tenant="bat-0" model="aft"
  storm kill at=2s devices=2 for=1s
}
`

const detLarge = `
model "echo" { layer lstm hidden=64 steps=2 }
tenant "lat-0" class=latency
tenant "bat-0" class=batch
scenario {
  seed     = 17
  duration = 5s
  sample   = 5%
  devices  = 1000
  deploy "echo" tenant="lat-0" replicas=3
  deploy "echo" tenant="bat-0"
  traffic diurnal rate=30/s trough=20% period=2s tenant="lat-0" model="echo"
  traffic poisson rate=10/s tenant="bat-0" model="echo"
  storm kill at=2s devices=15 for=1s
}
`

// TestScenarioDeterminism replays the same spec+seed twice at 10-device
// and 1000-device scale: trace hashes and entire SLO reports must be
// identical.
func TestScenarioDeterminism(t *testing.T) {
	for _, tc := range []struct {
		name string
		src  string
	}{
		{"10-device", detSmall},
		{"1000-device", detLarge},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if testing.Short() && tc.name == "1000-device" {
				t.Skip("fleet-scale replay skipped in -short")
			}
			a, err := Run(compileSrc(t, tc.src), tc.name)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(compileSrc(t, tc.src), tc.name)
			if err != nil {
				t.Fatal(err)
			}
			if !a.Valid || !b.Valid {
				t.Fatalf("runs not green: %q / %q", a.Violation, b.Violation)
			}
			if a.TraceHash != b.TraceHash {
				t.Fatalf("trace hashes differ: %s vs %s", a.TraceHash, b.TraceHash)
			}
			if !reflect.DeepEqual(a, b) {
				aj, _ := json.Marshal(a)
				bj, _ := json.Marshal(b)
				t.Fatalf("reports differ:\n%s\n%s", aj, bj)
			}
		})
	}
}

// TestReportJSONRoundTrip pins that a report survives the write→read→
// validate path the CLI uses, and that tampering is caught.
func TestReportJSONRoundTrip(t *testing.T) {
	rep, err := Run(compileSrc(t, detSmall), "roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("re-read report invalid: %v", err)
	}
	if back.TraceHash != rep.TraceHash || back.Arrivals != rep.Arrivals {
		t.Fatal("round trip lost fields")
	}
	// Tampering: a report claiming green while carrying a violation, a
	// broken SLO sum, and a truncated verdict list must all be rejected.
	bad := back
	bad.Violation = "step 3: invariant \"golden-equivalence\": boom"
	if err := bad.Validate(); err == nil {
		t.Error("violation with valid=true passed validation")
	}
	bad = back
	bad.Classes["latency"].Served += 7
	if err := bad.Validate(); err == nil {
		t.Error("broken served+shed sum passed validation")
	}
	// (restore for the next check — Classes is shared state)
	bad.Classes["latency"].Served -= 7
	bad = back
	bad.Invariants = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty verdict list passed validation")
	}
}

// TestScenarioErrors covers engine-level spec rejections (distinct from
// parse/compile diagnostics): no scenario block, nothing deployed, storms
// larger than the fleet.
func TestScenarioErrors(t *testing.T) {
	spec := compileSrc(t, `model "m" { layer lstm hidden=4 steps=1 }`)
	if _, err := Run(spec, "x"); err == nil {
		t.Error("specless run succeeded")
	}
	spec = compileSrc(t, `scenario { duration = 1s }`)
	if _, err := Run(spec, "x"); err == nil {
		t.Error("deployless run succeeded")
	}
	spec = compileSrc(t, `
model "m" { layer lstm hidden=16 steps=1 }
scenario { duration = 5s devices { XCVU37P = 3 }
  deploy "m"
  traffic poisson rate=2/s model="m"
  storm kill at=1s devices=2
}`)
	if _, err := Run(spec, "x"); err == nil {
		t.Error("storm eating all-but-one device succeeded")
	}
}
