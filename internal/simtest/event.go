// Package simtest is a seeded, fully deterministic whole-cluster
// simulator in the FoundationDB style: a PRNG-derived schedule of
// interleaved control- and data-plane events — lease deploys and
// releases, /infer batches, heartbeats, device kills, drains,
// rebalance ticks, injected resize failures — executes against the real
// stack (rms admission service + data plane, cluster control plane,
// registry) on the discrete-event engine's virtual clock, and a set of
// invariant checkers runs after every event. On a violation the harness
// re-executes with a shrinking pass (ddmin-style chunk removal) and
// reports a minimal event schedule plus the seed, so any failure found
// by a seed sweep is a one-line reproduction.
//
// Everything time-dependent rides cluster.DESClock over des.Engine, and
// every random choice derives from the schedule's seed, so the same seed
// always produces the same event trace and the same pass/fail verdict —
// the property `make simtest` asserts before sweeping seeds.
package simtest

import (
	"fmt"
	"math/rand"
)

// EventKind enumerates the schedule vocabulary.
type EventKind int

const (
	// EvHeartbeat beats every device that is not killed.
	EvHeartbeat EventKind = iota
	// EvTick runs one control-plane pass (sweep, evacuate, re-partition).
	EvTick
	// EvInfer serves a small concurrent batch of requests on one lease and
	// checks the outputs against the golden memo (bit-identical across
	// migrations and resizes).
	EvInfer
	// EvLoad scripts a lease's observed queue depth, driving the
	// planner's scale-up/scale-down decisions at the next tick.
	EvLoad
	// EvDeploy admits a new lease (bounded by Options.MaxLeases).
	EvDeploy
	// EvRelease releases a live lease through the data plane's drain path.
	EvRelease
	// EvRedeploy releases a live lease and immediately deploys the same
	// spec again: the warm-start path. With the artifact store populated,
	// the new lease must report a warm deploy (zero compile work).
	EvRedeploy
	// EvKill silences a device's heartbeats until EvRevive (the registry
	// times it out to Suspect, then Dead).
	EvKill
	// EvRevive resumes a killed device's heartbeats.
	EvRevive
	// EvDrain administratively drains a device (at most one at a time).
	EvDrain
	// EvUndrain returns the drained device to service.
	EvUndrain
	// EvCondemn reports positive failure evidence for one shard of a live
	// lease (a scaleout.DeviceError routed through ObserveError).
	EvCondemn
	// EvResizeFail arms the resize interceptor to fail the next machine
	// pool resizes, exercising the control plane's resize-debt retry.
	EvResizeFail
	// EvPreempt serves a concurrent batch on one lease while firing
	// explicit preemptions into it: resident streams are checkpointed back
	// into the fair queue mid-sequence and must finish bit-identical to a
	// never-preempted run.
	EvPreempt
	// EvRestore rebuilds a lease's engine pool mid-batch (a same-size
	// resize): the transplant checkpoints resident streams and restores
	// them onto the fresh machines, again bit-identical.
	EvRestore
	// EvDefrag runs one quiet-period consolidation pass on the control
	// plane (idle leases packed onto already-occupied devices).
	EvDefrag

	numEventKinds
)

var eventNames = [...]string{
	EvHeartbeat:  "heartbeat",
	EvTick:       "tick",
	EvInfer:      "infer",
	EvLoad:       "load",
	EvDeploy:     "deploy",
	EvRelease:    "release",
	EvRedeploy:   "redeploy",
	EvKill:       "kill",
	EvRevive:     "revive",
	EvDrain:      "drain",
	EvUndrain:    "undrain",
	EvCondemn:    "condemn",
	EvResizeFail: "resize_fail",
	EvPreempt:    "preempt",
	EvRestore:    "restore",
	EvDefrag:     "defrag",
}

func (k EventKind) String() string {
	if k >= 0 && int(k) < len(eventNames) {
		return eventNames[k]
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one abstract schedule entry. R is a raw PRNG draw resolved
// against the live cluster state at execution time (e.g. "release the
// R-th live lease"), which keeps a schedule executable after the
// minimizer removes arbitrary subsets of it.
type Event struct {
	Kind EventKind
	R    uint64
}

func (e Event) String() string { return fmt.Sprintf("%s r=%#x", e.Kind, e.R) }

// Schedule derives the event list for a seed: a pure function, so the
// same (seed, steps) pair always yields the same schedule. Weights skew
// toward the serving path (heartbeats, infers, ticks) with a steady
// trickle of fault and lifecycle events.
func Schedule(seed int64, steps int) []Event {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Event, steps)
	for i := range out {
		p := rng.Intn(1000)
		var k EventKind
		switch {
		case p < 270:
			k = EvHeartbeat
		case p < 500:
			k = EvInfer
		case p < 690:
			k = EvTick
		case p < 780:
			k = EvLoad
		case p < 813:
			k = EvDeploy
		case p < 841:
			k = EvRedeploy
		case p < 869:
			k = EvRelease
		case p < 887:
			k = EvKill
		case p < 903:
			k = EvRevive
		case p < 916:
			k = EvDrain
		case p < 929:
			k = EvUndrain
		case p < 941:
			k = EvCondemn
		case p < 950:
			k = EvResizeFail
		case p < 972:
			k = EvPreempt
		case p < 988:
			k = EvRestore
		default:
			k = EvDefrag
		}
		out[i] = Event{Kind: k, R: rng.Uint64()}
	}
	return out
}
