package simtest

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"mlvfpga/internal/artifactstore"
	"mlvfpga/internal/cluster"
	"mlvfpga/internal/des"
	"mlvfpga/internal/kernels"
	"mlvfpga/internal/metrics"
	"mlvfpga/internal/perf"
	"mlvfpga/internal/resource"
	"mlvfpga/internal/rms"
	"mlvfpga/internal/scaleout"
	"mlvfpga/internal/tenant"
)

// resizeFailMsg is the distinctive error the harness's resize interceptor
// injects. The counter-conservation checker matches it verbatim to tell
// "migration landed but the pool resize failed" (counts as a migration,
// retried as resize debt) apart from a migration that found no capacity.
const resizeFailMsg = "simtest: injected resize failure"

// Fault selects a deliberate bug to arm in the stack under test, used to
// validate that the invariant checkers actually catch the bug classes
// they claim to.
type Fault string

const (
	// FaultNone runs the unmodified stack.
	FaultNone Fault = ""
	// FaultSkipTombstone arms rms.Faults.SkipReleaseTombstone: releases
	// leak the lease's engine. Caught by the engine/tombstone invariant.
	FaultSkipTombstone Fault = "skip-tombstone"
	// FaultSkipMigrationMetric arms cluster.Faults.SkipMigrationMetric:
	// successful migrations stop incrementing mlv_migrations. Caught by
	// the counter-conservation invariant.
	FaultSkipMigrationMetric Fault = "skip-migration-metric"
	// FaultSkipTenantServed arms rms.Faults.SkipTenantServedMetric:
	// executed batches stop crediting the per-tenant served counter.
	// Caught by the tenant-accounting invariant.
	FaultSkipTenantServed Fault = "skip-tenant-served-metric"
	// FaultLeakSlot arms rms.Faults.LeakSlot: the continuous plane's
	// first retirement per engine leaves its batch slot permanently
	// occupied — a real capacity leak. Caught by the slot-conservation
	// invariant (mlv_slots_active fails to drain back to baseline).
	FaultLeakSlot Fault = "leak-slot"
	// FaultLeakSnapshot arms rms.Faults.LeakSnapshot: one eviction's
	// checkpoint is dropped and the stream restarts from scratch. Caught
	// by the snapshot-conservation invariant (a capture with no restore).
	FaultLeakSnapshot Fault = "leak-snapshot"
	// FaultRestoreAtZero arms rms.Faults.RestoreAtZero: restores resume
	// at timestep 0 instead of the saved program counter, so the restored
	// register state replays from the wrong place. Caught by the
	// golden-equivalence invariant (outputs diverge from the
	// never-preempted twin).
	FaultRestoreAtZero Fault = "restore-at-zero"
)

// Options configures one simulated run. Everything that influences the
// run is in here, so Run(o) is a pure function of o.
type Options struct {
	// Seed derives the event schedule (and nothing else: the stack under
	// test contains no randomness of its own at these settings).
	Seed int64
	// Steps is the number of schedule events.
	Steps int
	// Cluster is the simulated device inventory.
	Cluster resource.ClusterSpec
	// Spec is the layer every simulated lease serves.
	Spec kernels.LayerSpec
	// Infer tunes the data plane; Infer.Seed makes lease weights
	// reproducible (weights derive from Infer.Seed + lease id).
	Infer rms.InferOptions
	// Control tunes the control plane under test.
	Control cluster.Config
	// MaxLeases caps concurrently live leases.
	MaxLeases int
	// Tenants, when non-empty, installs a tenant registry on the service
	// and data plane: every deploy and infer is attributed to a tenant
	// drawn from the schedule, lease quotas are enforced, and the
	// quota-conservation and tenant-accounting invariants activate.
	Tenants []tenant.Tenant
	// Spacing is the virtual time between schedule events; against the
	// registry's SuspectAfter/DeadAfter windows it sets how fast killed
	// devices decay through the health state machine.
	Spacing time.Duration
	// SettleSteps heartbeat+tick rounds run after the schedule so
	// evacuations and backoffs quiesce before the end-of-run stranded
	// check; SettlePeriod is their spacing (it must comfortably exceed
	// Control.MaxBackoff/SettleSteps so retries burn off).
	SettleSteps  int
	SettlePeriod time.Duration
	// Fault arms a deliberate bug (see Fault).
	Fault Fault
}

// DefaultOptions returns the sweep configuration: the paper's 4-device
// cluster, a small LSTM lease whose feasible ladder spans multiple
// depths, and an eager planner so load events actually move leases.
func DefaultOptions(seed int64) Options {
	ctl := cluster.DefaultConfig()
	ctl.Planner.ScaleUpQueue = 4
	ctl.Planner.ScaleDownIdleTicks = 2
	ctl.MachinesPerPiece = 1
	return Options{
		Seed:    seed,
		Steps:   500,
		Cluster: resource.PaperCluster(),
		Spec:    kernels.LayerSpec{Kind: kernels.LSTM, Hidden: 64, TimeSteps: 2},
		Infer: rms.InferOptions{
			MaxBatch:   4,
			FlushDelay: 100 * time.Microsecond,
			Machines:   1,
			Tiles:      1,
			Seed:       7,
			// Automatic latency-class preemption stays on in the sweep:
			// preempted streams resume bit-identically, so traces remain
			// deterministic while the checkpoint path earns real coverage.
			Preempt: true,
		},
		Control:   ctl,
		MaxLeases: 4,
		// Two tenants of opposite QoS class, each allowed 3 of the 4
		// lease slots: quota rejections genuinely occur (one tenant can
		// hold 3 while the other deploys) without starving the sim.
		// In-flight and block quotas stay unlimited — their enforcement
		// is timing-adjacent and belongs to the rms unit tests.
		Tenants: []tenant.Tenant{
			{ID: "sim-lat", Key: "sim-lat-key", Class: tenant.Latency, Quotas: tenant.Quotas{MaxLeases: 3}},
			{ID: "sim-bat", Key: "sim-bat-key", Class: tenant.Batch, Quotas: tenant.Quotas{MaxLeases: 3}},
		},
		Spacing:      200 * time.Millisecond,
		SettleSteps:  12,
		SettlePeriod: time.Second,
	}
}

// Violation is one invariant breach.
type Violation struct {
	// Step indexes the schedule event after which the breach was seen
	// (settle rounds continue the numbering past the schedule).
	Step int
	// Invariant names the checker: "lease-conservation",
	// "placement-shape", "duplicate-device", "placement-conservation",
	// "feasible-depth", "engine-tombstone", "counter-conservation",
	// "batch-conservation", "slot-conservation", "golden-equivalence",
	// "infer-served", "warm-deploy", "artifact-cache",
	// "stranded-placement", "quota-conservation", "tenant-accounting",
	// "snapshot-conservation",
	// or an *-error for an operation that failed when the model says it
	// cannot.
	Invariant string
	Detail    string
}

func (v *Violation) String() string {
	return fmt.Sprintf("step %d: invariant %q: %s", v.Step, v.Invariant, v.Detail)
}

// Result is one run's verdict.
type Result struct {
	Seed     int64
	Schedule []Event
	// Trace is the resolved event log (deterministic fields only).
	Trace     []string
	TraceHash uint64
	// Violation is nil when every invariant held.
	Violation *Violation
	// Minimal is the shrunken schedule still reproducing
	// Violation.Invariant; MinimalTrace is its resolved log.
	Minimal      []Event
	MinimalTrace []string
	// MinimizeRuns counts re-executions the shrinking pass spent.
	MinimizeRuns int
}

// Report renders the result for humans, including the reproduction
// command when the run failed.
func (r *Result) Report() string {
	if r.Violation == nil {
		return fmt.Sprintf("seed %d: ok (%d events, trace %016x)", r.Seed, len(r.Schedule), r.TraceHash)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d: %s\n", r.Seed, r.Violation)
	fmt.Fprintf(&b, "minimized schedule: %d of %d events (%d shrink runs):\n",
		len(r.Minimal), len(r.Schedule), r.MinimizeRuns)
	for i, ev := range r.Minimal {
		fmt.Fprintf(&b, "  [%02d] %s\n", i, ev)
	}
	if len(r.MinimalTrace) > 0 {
		b.WriteString("minimal trace:\n")
		for _, line := range r.MinimalTrace {
			b.WriteString("  " + line + "\n")
		}
	}
	fmt.Fprintf(&b, "reproduce: go test ./internal/simtest -run TestSimSeed -seed=%d -steps=%d -v\n",
		r.Seed, len(r.Schedule))
	return b.String()
}

// Run executes the seed's schedule and, on a violation, shrinks it to a
// minimal reproduction. Deterministic: same Options, same Result.
func Run(o Options) (*Result, error) {
	sched := Schedule(o.Seed, o.Steps)
	out, err := runSchedule(o, sched)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Seed:      o.Seed,
		Schedule:  sched,
		Trace:     out.trace,
		TraceHash: hashTrace(out.trace),
		Violation: out.violation,
	}
	if out.violation != nil {
		res.Minimal, res.MinimalTrace, res.MinimizeRuns = minimize(o, sched, out.violation)
		if res.MinimalTrace == nil {
			res.MinimalTrace = out.trace // nothing shrank: the full run is minimal
		}
	}
	return res, nil
}

type outcome struct {
	trace     []string
	violation *Violation
}

// goldenKey memoizes inference outputs by (lease, input seed): the same
// lease has fixed weights, so the same input must produce bit-identical
// outputs for the rest of its life, across every migration and resize.
type goldenKey struct {
	lease int
	seed  int64
}

// harness wires one fresh stack (service, data plane, control plane) to
// one DES engine and owns the model state the checkers compare against.
// All schedule execution is single-goroutine (DES callbacks); the only
// concurrency is inside an infer event, which joins before returning.
type harness struct {
	o     Options
	eng   *des.Engine
	svc   *rms.Service
	dp    *rms.DataPlane
	cp    *cluster.ControlPlane
	store *artifactstore.Store

	devices []int
	loads   map[int]rms.LoadStats
	armFail int

	live     []int
	killed   map[int]bool
	drained  map[int]bool
	golden   map[goldenKey]uint64
	base     map[string]int64
	slotBase map[string]int64
	snapBase map[string]int64

	// Multi-spec model: which layer each live lease serves, and the set of
	// distinct artifact keys ever sent to the deploy path. The compile runs
	// before admission (and its artifact survives a failed placement), so
	// the expected artifact-store compute count is exactly len(keySeen).
	// Keys, not specs: distinct layers resolving to the same accelerator
	// instance share one compilation product.
	comp      *rms.Compiler
	leaseSpec map[int]kernels.LayerSpec
	keySeen   map[artifactstore.Key]bool

	// Tenant model: who owns each live lease, plus per-tenant expected
	// counter deltas mirroring mlv_tenant_{requests,infers_served,
	// rejections}. tenantBase snapshots the process-wide per-tenant
	// expvars at harness birth (they are shared across runs in one test
	// binary, so only deltas are meaningful).
	reg             *tenant.Registry
	leaseTenant     map[int]string
	tenantBase      map[string]map[string]int64
	expTenantReq    map[string]int64
	expTenantServed map[string]int64
	expTenantRej    map[string]int64

	expInfers      int64
	expInferEvents int64
	expMigrations  int64
	expMigFailures int64
	expHbMisses    int64
	expCondemned   int64
	expDefragMoves int64

	settling bool
	// excused marks leases whose settle-phase evacuation failed for lack
	// of capacity: they are allowed to end the run stranded.
	excused map[int]bool

	trace     []string
	violation *Violation
}

// simPlane is the LoadSource/Resizer the control plane sees: loads come
// from the schedule's scripted map (live queue depths are timing-
// dependent and would break determinism) and resizes pass through to the
// real data plane unless an injected failure is armed.
type simPlane struct{ h *harness }

func (p simPlane) Load(leaseID int) (rms.LoadStats, bool) {
	l, ok := p.h.loads[leaseID]
	return l, ok
}

func (p simPlane) Resize(leaseID, machines int) error {
	if p.h.armFail > 0 {
		p.h.armFail--
		return errors.New(resizeFailMsg)
	}
	return p.h.dp.Resize(leaseID, machines)
}

func newHarness(o Options, preamble bool) (*harness, error) {
	eng := des.New()
	db := rms.NewDatabase(rms.Flexible, perf.DefaultParams(), scaleout.DefaultOptions())
	svc, err := rms.NewService(o.Cluster, db)
	if err != nil {
		return nil, fmt.Errorf("simtest: building service: %w", err)
	}
	// The warm-start compile path runs over a memory-backed artifact
	// store, so every deploy after the preamble's first must be a cache
	// hit — the artifact-cache and warm-deploy invariants pin that.
	store := artifactstore.NewMemory(artifactstore.Options{})
	comp := rms.NewCompiler(store, rms.CompilerOptions{Parallelism: 1})
	svc.SetCompiler(comp)
	dp := rms.NewDataPlane(svc, o.Infer)
	h := &harness{
		o:               o,
		eng:             eng,
		svc:             svc,
		dp:              dp,
		store:           store,
		comp:            comp,
		loads:           map[int]rms.LoadStats{},
		killed:          map[int]bool{},
		drained:         map[int]bool{},
		golden:          map[goldenKey]uint64{},
		excused:         map[int]bool{},
		leaseSpec:       map[int]kernels.LayerSpec{},
		keySeen:         map[artifactstore.Key]bool{},
		leaseTenant:     map[int]string{},
		expTenantReq:    map[string]int64{},
		expTenantServed: map[string]int64{},
		expTenantRej:    map[string]int64{},
	}
	if len(o.Tenants) > 0 {
		reg, rerr := tenant.NewRegistry(o.Tenants...)
		if rerr != nil {
			return nil, fmt.Errorf("simtest: tenant registry: %w", rerr)
		}
		h.reg = reg
		svc.SetTenants(reg)
		dp.SetTenants(reg)
	}
	clk := cluster.DESClock{Engine: eng, Epoch: time.Unix(0, 0).UTC()}
	h.cp = cluster.New(clk, o.Control, svc, simPlane{h})
	switch o.Fault {
	case FaultSkipTombstone:
		dp.InjectFaults(rms.Faults{SkipReleaseTombstone: true})
	case FaultSkipMigrationMetric:
		h.cp.InjectFaults(cluster.Faults{SkipMigrationMetric: true})
	case FaultSkipTenantServed:
		dp.InjectFaults(rms.Faults{SkipTenantServedMetric: true})
	case FaultLeakSlot:
		dp.InjectFaults(rms.Faults{LeakSlot: true})
	case FaultLeakSnapshot:
		dp.InjectFaults(rms.Faults{LeakSnapshot: true})
	case FaultRestoreAtZero:
		dp.InjectFaults(rms.Faults{RestoreAtZero: true})
	}
	for _, f := range svc.Status().FPGAs {
		h.devices = append(h.devices, f.ID)
	}
	sort.Ints(h.devices)
	// Counter baselines before the preamble, so the LeasesActive delta
	// tracks len(h.live) exactly and per-tenant deltas start at zero.
	h.base = metrics.Counters()
	h.slotBase = metrics.SlotCounters()
	h.snapBase = metrics.SnapshotCounters()
	h.tenantBase = metrics.TenantCounters()
	// Preamble: two leases exist before the first event, so even a
	// one-event minimal schedule has something to act on. With tenants
	// configured they alternate owners, so both tenants hold state from
	// step zero. (The scenario engine skips it and deploys from its spec.)
	if preamble {
		for i := 0; i < 2 && i < o.MaxLeases; i++ {
			var po rms.PlaceOptions
			if len(o.Tenants) > 0 {
				po.Tenant = o.Tenants[i%len(o.Tenants)].ID
			}
			h.markSpec(o.Spec)
			l, err := svc.DeployWith(o.Spec, po)
			if err != nil {
				return nil, fmt.Errorf("simtest: preamble deploy: %w", err)
			}
			if po.Tenant != "" {
				h.expTenantReq[po.Tenant]++
				h.leaseTenant[l.ID] = po.Tenant
			}
			h.leaseSpec[l.ID] = o.Spec
			h.live = append(h.live, l.ID)
		}
	}
	return h, nil
}

// runSchedule executes an explicit schedule (used directly by the
// minimizer; Run derives the schedule from the seed). The events are laid
// onto the DES engine at fixed spacing, followed by the settle rounds.
func runSchedule(o Options, sched []Event) (*outcome, error) {
	h, err := newHarness(o, true)
	if err != nil {
		return nil, err
	}
	defer h.dp.Close()
	for i := range sched {
		i, ev := i, sched[i]
		if err := h.eng.At(time.Duration(i+1)*o.Spacing, func(time.Duration) {
			h.exec(i, ev)
		}); err != nil {
			return nil, err
		}
	}
	settleStart := time.Duration(len(sched)+1) * o.Spacing
	for k := 0; k < o.SettleSteps; k++ {
		step := len(sched) + k
		if err := h.eng.At(settleStart+time.Duration(k)*o.SettlePeriod, func(time.Duration) {
			h.settle(step)
		}); err != nil {
			return nil, err
		}
	}
	h.eng.Run(0)
	if h.violation == nil {
		h.checkStranded(len(sched) + o.SettleSteps)
	}
	return &outcome{trace: h.trace, violation: h.violation}, nil
}

func (h *harness) tracef(step int, format string, args ...any) {
	h.trace = append(h.trace, fmt.Sprintf("%04d ", step)+fmt.Sprintf(format, args...))
}

func (h *harness) fail(step int, invariant, format string, args ...any) {
	if h.violation == nil {
		h.violation = &Violation{Step: step, Invariant: invariant, Detail: fmt.Sprintf(format, args...)}
	}
}

func (h *harness) pickLive(r uint64) int {
	return h.live[int(r%uint64(len(h.live)))]
}

// tenantFor resolves a PRNG draw to a tenant id (empty when the run is
// tenantless). Callers pass distinct shifted views of the event's R so the
// tenant choice does not correlate with lease or seed choices.
func (h *harness) tenantFor(r uint64) string {
	if len(h.o.Tenants) == 0 {
		return ""
	}
	return h.o.Tenants[int(r%uint64(len(h.o.Tenants)))].ID
}

// tenantAtLeaseCap answers whether the model says the tenant has spent its
// MaxLeases quota — the oracle the deploy path is checked against.
func (h *harness) tenantAtLeaseCap(who string) bool {
	if who == "" || h.reg == nil {
		return false
	}
	t, ok := h.reg.Lookup(who)
	if !ok || t.Quotas.MaxLeases <= 0 {
		return false
	}
	n := 0
	for _, id := range h.live {
		if h.leaseTenant[id] == who {
			n++
		}
	}
	return n >= t.Quotas.MaxLeases
}

func (h *harness) exec(step int, ev Event) {
	if h.violation != nil {
		return // fail-stop: later events would check against a broken model
	}
	switch ev.Kind {
	case EvHeartbeat:
		h.doHeartbeat(step)
	case EvTick:
		h.doTick(step)
	case EvInfer:
		h.doInfer(step, ev.R)
	case EvLoad:
		h.doLoad(step, ev.R)
	case EvDeploy:
		h.doDeploy(step, ev.R)
	case EvRelease:
		h.doRelease(step, ev.R)
	case EvRedeploy:
		h.doRedeploy(step, ev.R)
	case EvKill:
		h.doKill(step, ev.R)
	case EvRevive:
		h.doRevive(step, ev.R)
	case EvDrain:
		h.doDrain(step, ev.R)
	case EvUndrain:
		h.doUndrain(step, ev.R)
	case EvCondemn:
		h.doCondemn(step, ev.R)
	case EvResizeFail:
		h.doResizeFail(step, ev.R)
	case EvPreempt:
		h.doPreempt(step, ev.R)
	case EvRestore:
		h.doRestore(step, ev.R)
	case EvDefrag:
		h.doDefrag(step)
	}
	if h.violation == nil {
		h.checkInvariants(step)
	}
}

func (h *harness) doHeartbeat(step int) {
	beat := 0
	for _, d := range h.devices {
		if h.killed[d] {
			continue
		}
		if err := h.cp.Heartbeat(d); err != nil {
			h.fail(step, "heartbeat-error", "device %d: %v", d, err)
			return
		}
		beat++
	}
	h.tracef(step, "heartbeat n=%d", beat)
}

func (h *harness) doTick(step int) {
	rep := h.cp.Tick()
	h.accountTick(rep)
	b, _ := json.Marshal(rep)
	h.tracef(step, "tick %s", b)
}

// accountTick folds a tick report into the expected-counter model. An
// evacuate/scale event whose only error is the injected resize failure
// still migrated (the resize is owed as debt); a "resize" retry event
// touches no counter either way.
func (h *harness) accountTick(rep *cluster.TickReport) {
	h.expHbMisses += int64(len(rep.Transitions))
	for _, ev := range rep.Events {
		switch ev.Kind {
		case "evacuate", "scale_up", "scale_down":
			if ev.Err == "" || ev.Err == resizeFailMsg {
				h.expMigrations++
			} else {
				h.expMigFailures++
				if h.settling && ev.Kind == "evacuate" {
					h.excused[ev.Lease] = true
				}
			}
		}
	}
}

func (h *harness) doInfer(step int, r uint64) {
	h.serveBatch(step, r, "infer", nil)
}

// doPreempt serves a concurrent batch while firing explicit preemptions
// into it: resident streams are checkpointed back into the fair queue and
// resumed, and the outputs must not change. The eviction count is timing-
// dependent, so it never enters the trace or the model — the snapshot-
// conservation invariants pin the bookkeeping instead, and any demand
// left unconsumed here preempts streams of later events (more coverage,
// same invariants).
func (h *harness) doPreempt(step int, r uint64) {
	h.serveBatch(step, r, "preempt", func(id int) {
		for k := 0; k < 24; k++ {
			if _, err := h.dp.Preempt(id, 1); err != nil {
				h.fail(step, "preempt-error", "lease %d: %v", id, err)
				return
			}
			runtime.Gosched() // 1-CPU boxes: let workers hit the demand
		}
	})
}

// doRestore rebuilds the lease's engine pool mid-batch at its current
// size: the transplant checkpoints every queued and resident stream and
// restores them onto the fresh machines, bit-identically.
func (h *harness) doRestore(step int, r uint64) {
	h.serveBatch(step, r, "restore", func(id int) {
		lease, ok := h.svc.Lease(id)
		if !ok {
			h.fail(step, "lease-conservation", "model says lease %d is live, service disagrees", id)
			return
		}
		per := h.o.Control.MachinesPerPiece
		if per <= 0 {
			per = cluster.DefaultConfig().MachinesPerPiece
		}
		runtime.Gosched()
		if err := h.dp.Resize(id, lease.Depth*per); err != nil {
			h.fail(step, "restore-error", "lease %d: %v", id, err)
		}
	})
}

// serveBatch is the shared body of the infer-shaped events: a small
// concurrent request batch on one lease, optionally disturbed mid-flight
// by mid (preemption, transplant), then joined and audited against the
// golden memo.
func (h *harness) serveBatch(step int, r uint64, kind string, mid func(id int)) {
	if len(h.live) == 0 {
		h.tracef(step, "%s noop", kind)
		return
	}
	id := h.pickLive(r)
	// The submitting tenant is drawn independently of the lease, so
	// requests routinely ride leases owned by the other tenant — exactly
	// the cross-tenant traffic the golden memo must prove leak-free
	// (outputs depend on (lease, seed) alone, never on the submitter).
	who := h.tenantFor(r >> 48)
	n := 1 + int((r>>16)%3)
	seeds := make([]int64, n)
	for j := range seeds {
		// A small recurring seed space, so later events replay inputs the
		// lease served before (often across a migration in between) and
		// the golden memo gets real coverage.
		seeds[j] = int64(((r >> 32) + uint64(j)) % 8)
	}
	h.serveOn(step, id, who, seeds, kind, mid)
}

// serveOn serves one explicit concurrent batch on a lease: the core of
// serveBatch, also driven directly by the scenario engine with its own
// (lease, tenant, seeds) choices.
func (h *harness) serveOn(step, id int, who string, seeds []int64, kind string, mid func(id int)) {
	n := len(seeds)
	spec, ok := h.leaseSpec[id]
	if !ok {
		h.fail(step, "lease-conservation", "serve on lease %d the model never deployed", id)
		return
	}
	results := make([]*rms.InferResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for j := 0; j < n; j++ {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[j], errs[j] = h.dp.InferAs(who, id, inputsFor(spec, id, seeds[j]))
		}()
	}
	if mid != nil {
		mid(id)
	}
	wg.Wait()
	if who != "" {
		// InferAs counts every attempt before shedding or serving.
		h.expTenantReq[who] += int64(n)
	}
	if h.violation != nil {
		return // mid already failed; the joined requests are accounted above
	}
	hashes := make([]string, n)
	for j := 0; j < n; j++ {
		if errs[j] != nil {
			h.fail(step, "infer-served", "lease %d seed %d tenant %s: %v", id, seeds[j], who, errs[j])
			return
		}
		hash := hashOutputs(results[j].Outputs)
		hashes[j] = fmt.Sprintf("%016x", hash)
		key := goldenKey{lease: id, seed: seeds[j]}
		if prev, ok := h.golden[key]; ok {
			if prev != hash {
				h.fail(step, "golden-equivalence",
					"lease %d seed %d: output hash %016x, previously %016x", id, seeds[j], hash, prev)
				return
			}
		} else {
			h.golden[key] = hash
		}
	}
	if who != "" {
		h.expTenantServed[who] += int64(n)
	}
	h.expInfers += int64(n)
	h.expInferEvents++
	h.tracef(step, "%s lease=%d tenant=%s n=%d seeds=%v out=%v", kind, id, who, n, seeds, hashes)
}

// doDefrag runs one consolidation pass. The report is deterministic (the
// quiet gate reads the scripted load map, placements are a pure function
// of event history), so it is traced whole.
func (h *harness) doDefrag(step int) {
	rep := h.cp.Defrag()
	for _, ev := range rep.Moves {
		if ev.Err == "" || ev.Err == resizeFailMsg {
			// The consolidation migration landed (a resize failure is owed
			// as debt and retried by a later tick's "resize" event).
			h.expMigrations++
			h.expDefragMoves++
		} else {
			h.expMigFailures++
		}
	}
	b, _ := json.Marshal(rep)
	h.tracef(step, "defrag %s", b)
}

func (h *harness) doLoad(step int, r uint64) {
	if len(h.live) == 0 {
		h.tracef(step, "load noop")
		return
	}
	id := h.pickLive(r)
	qd := int((r >> 8) % 10)
	h.loads[id] = rms.LoadStats{QueueDepth: qd}
	h.tracef(step, "load lease=%d queue=%d", id, qd)
}

func (h *harness) doDeploy(step int, r uint64) {
	if len(h.live) >= h.o.MaxLeases {
		h.tracef(step, "deploy noop (at cap)")
		return
	}
	who := h.tenantFor(r >> 24)
	l, ok := h.deployAs(step, h.o.Spec, who)
	if !ok {
		return
	}
	if l == nil {
		h.tracef(step, "deploy shed tenant=%s", who)
		return
	}
	h.tracef(step, "deploy lease=%d depth=%d tenant=%s", l.ID, l.Depth, who)
}

// markSpec records a deploy attempt for the spec's compile plan and
// reports whether its artifact was already ensured — i.e. whether the
// deploy must come back warm. Undeployable specs resolve to no plan and
// trigger no compile.
func (h *harness) markSpec(spec kernels.LayerSpec) bool {
	key, err := h.comp.PlanKey(spec)
	if err != nil {
		return false
	}
	seen := h.keySeen[key]
	h.keySeen[key] = true
	return seen
}

// deployAs runs one attributed deploy and audits the admission decision
// against the quota model. Returns (lease, true) on admission, (nil, true)
// on a correctly-shed attempt (quota or capacity), and (nil, false) after
// recording a violation.
func (h *harness) deployAs(step int, spec kernels.LayerSpec, who string) (*rms.Lease, bool) {
	atCap := h.tenantAtLeaseCap(who)
	if who != "" {
		h.expTenantReq[who]++
	}
	// The compile runs before admission, so even a deploy that will be shed
	// on quota or capacity leaves its artifact behind: mark the spec's plan
	// seen before the attempt, and expect a warm lease exactly when its
	// artifact was already ensured.
	wantWarm := h.markSpec(spec)
	l, err := h.svc.DeployWith(spec, rms.PlaceOptions{Tenant: who})
	if errors.Is(err, rms.ErrQuotaExceeded) {
		h.expTenantRej[who]++
		if !atCap {
			h.fail(step, "quota-conservation", "tenant %s shed below its lease quota: %v", who, err)
			return nil, false
		}
		return nil, true
	}
	if errors.Is(err, rms.ErrNoCapacity) {
		return nil, true
	}
	if err != nil {
		h.fail(step, "deploy-error", "%v", err)
		return nil, false
	}
	if atCap {
		h.fail(step, "quota-conservation", "tenant %s admitted past MaxLeases as lease %d", who, l.ID)
		return nil, false
	}
	if wantWarm != l.WarmDeploy {
		h.fail(step, "warm-deploy", "lease %d warm=%v, want %v (artifact store had %d plans)",
			l.ID, l.WarmDeploy, wantWarm, len(h.keySeen))
		return nil, false
	}
	if who != "" {
		h.leaseTenant[l.ID] = who
	}
	h.leaseSpec[l.ID] = spec
	h.live = append(h.live, l.ID)
	return l, true
}

// doRedeploy cycles a live lease through the warm-start path: release it,
// then deploy the same spec again. The preamble populated the artifact
// store, so the replacement lease must come back warm — a redeploy that
// compiles is an invariant breach, not just a slow path.
func (h *harness) doRedeploy(step int, r uint64) {
	if len(h.live) == 0 {
		h.tracef(step, "redeploy noop")
		return
	}
	id := h.pickLive(r)
	if err := h.dp.Release(id); err != nil {
		h.fail(step, "release-error", "lease %d: %v", id, err)
		return
	}
	for i, v := range h.live {
		if v == id {
			h.live = append(h.live[:i], h.live[i+1:]...)
			break
		}
	}
	delete(h.loads, id)
	delete(h.leaseTenant, id)
	delete(h.leaseSpec, id)
	// The replacement lease may land on a different tenant than the one
	// released, so redeploys also churn ownership.
	who := h.tenantFor(r >> 24)
	l, ok := h.deployAs(step, h.o.Spec, who)
	if !ok {
		return
	}
	if l == nil {
		h.tracef(step, "redeploy out=%d shed tenant=%s", id, who)
		return
	}
	h.tracef(step, "redeploy out=%d in=%d depth=%d tenant=%s", id, l.ID, l.Depth, who)
}

func (h *harness) doRelease(step int, r uint64) {
	if len(h.live) == 0 {
		h.tracef(step, "release noop")
		return
	}
	id := h.pickLive(r)
	if err := h.dp.Release(id); err != nil {
		h.fail(step, "release-error", "lease %d: %v", id, err)
		return
	}
	for i, v := range h.live {
		if v == id {
			h.live = append(h.live[:i], h.live[i+1:]...)
			break
		}
	}
	delete(h.loads, id)
	delete(h.leaseTenant, id)
	delete(h.leaseSpec, id)
	h.tracef(step, "release lease=%d", id)
}

func (h *harness) doKill(step int, r uint64) {
	var eligible []int
	for _, d := range h.devices {
		if !h.killed[d] {
			eligible = append(eligible, d)
		}
	}
	// Keep at least two devices beating, so the sim never collapses into
	// a fleet that cannot host anything.
	if len(eligible) <= 2 {
		h.tracef(step, "kill noop")
		return
	}
	d := eligible[int(r%uint64(len(eligible)))]
	h.killed[d] = true
	h.tracef(step, "kill dev=%d", d)
}

func (h *harness) doRevive(step int, r uint64) {
	var down []int
	for _, d := range h.devices {
		if h.killed[d] {
			down = append(down, d)
		}
	}
	if len(down) == 0 {
		h.tracef(step, "revive noop")
		return
	}
	d := down[int(r%uint64(len(down)))]
	delete(h.killed, d)
	if err := h.cp.Heartbeat(d); err != nil {
		h.fail(step, "heartbeat-error", "device %d: %v", d, err)
		return
	}
	h.tracef(step, "revive dev=%d", d)
}

func (h *harness) doDrain(step int, r uint64) {
	if len(h.drained) > 0 {
		h.tracef(step, "drain noop (one at a time)")
		return
	}
	var eligible []int
	for _, d := range h.devices {
		if !h.killed[d] && !h.drained[d] {
			eligible = append(eligible, d)
		}
	}
	if len(eligible) == 0 {
		h.tracef(step, "drain noop")
		return
	}
	d := eligible[int(r%uint64(len(eligible)))]
	if err := h.cp.Drain(d); err != nil {
		h.fail(step, "drain-error", "device %d: %v", d, err)
		return
	}
	h.drained[d] = true
	h.tracef(step, "drain dev=%d", d)
}

func (h *harness) doUndrain(step int, r uint64) {
	var ds []int
	for _, d := range h.devices {
		if h.drained[d] {
			ds = append(ds, d)
		}
	}
	if len(ds) == 0 {
		h.tracef(step, "undrain noop")
		return
	}
	d := ds[int(r%uint64(len(ds)))]
	if err := h.cp.Undrain(d); err != nil {
		h.fail(step, "undrain-error", "device %d: %v", d, err)
		return
	}
	delete(h.drained, d)
	h.tracef(step, "undrain dev=%d", d)
}

func (h *harness) doCondemn(step int, r uint64) {
	if len(h.live) == 0 {
		h.tracef(step, "condemn noop")
		return
	}
	id := h.pickLive(r)
	lease, ok := h.svc.Lease(id)
	if !ok {
		h.fail(step, "lease-conservation", "model says lease %d is live, service disagrees", id)
		return
	}
	shard := int((r >> 8) % uint64(len(lease.Placements)))
	want := lease.Placements[shard].FPGA
	prev, _ := h.cp.Registry().State(want)
	derr := &scaleout.DeviceError{Device: shard, Err: errors.New("simtest: injected device fault")}
	got, ok := h.cp.ObserveError(id, fmt.Errorf("serving lease %d: %w", id, derr))
	if !ok || got != want {
		h.fail(step, "condemn-routing",
			"lease %d shard %d: condemned fpga %d (ok=%v), placements say %d", id, shard, got, ok, want)
		return
	}
	if prev != cluster.Dead {
		h.expCondemned++
	}
	h.tracef(step, "condemn lease=%d shard=%d fpga=%d prev=%s", id, shard, want, prev)
}

func (h *harness) doResizeFail(step int, r uint64) {
	k := 1 + int(r%2)
	h.armFail += k
	h.tracef(step, "resize_fail arm=%d", k)
}

// settle is one post-schedule quiesce round: every surviving device
// beats, then the control plane ticks, so pending evacuations and
// backoffs resolve before the stranded check.
func (h *harness) settle(step int) {
	if h.violation != nil {
		return
	}
	h.settling = true
	for _, d := range h.devices {
		if h.killed[d] {
			continue
		}
		if err := h.cp.Heartbeat(d); err != nil {
			h.fail(step, "heartbeat-error", "device %d: %v", d, err)
			return
		}
	}
	rep := h.cp.Tick()
	h.accountTick(rep)
	b, _ := json.Marshal(rep)
	h.tracef(step, "settle %s", b)
	h.checkInvariants(step)
}

// checkStranded runs once after the settle rounds: no lease may still
// hold blocks on a dead or draining device, unless its evacuation
// verifiably failed for lack of capacity during settle (the control
// plane's correct answer then is to keep the lease and keep retrying).
func (h *harness) checkStranded(step int) {
	reg := h.cp.Registry()
	for _, l := range h.svc.Leases() {
		if h.excused[l.ID] {
			continue
		}
		for _, pl := range l.Placements {
			if reg.Evacuate(pl.FPGA) {
				st, _ := reg.State(pl.FPGA)
				h.fail(step, "stranded-placement",
					"lease %d still holds %d blocks on %s device %d after settle", l.ID, pl.Blocks, st, pl.FPGA)
				return
			}
		}
	}
}

// checkInvariants audits the stack against the harness's model after
// every event. First breach wins; later events are skipped.
func (h *harness) checkInvariants(step int) {
	leases := h.svc.Leases()

	// No lost or duplicated leases: the service's live set must equal the
	// model's, exactly.
	liveSet := map[int]bool{}
	for _, id := range h.live {
		liveSet[id] = true
	}
	if len(leases) != len(h.live) {
		h.fail(step, "lease-conservation", "service has %d leases, model has %d", len(leases), len(h.live))
		return
	}
	for _, l := range leases {
		if !liveSet[l.ID] {
			h.fail(step, "lease-conservation", "service lease %d not in model", l.ID)
			return
		}
	}

	// No stranded or double-freed placements: per-device occupancy must
	// equal the sum of lease placements, with no device used twice by one
	// lease and exactly one placement per piece.
	occupied := map[int]int{}
	ladders := map[kernels.LayerSpec][]int{}
	for _, l := range leases {
		if len(l.Placements) != l.Depth {
			h.fail(step, "placement-shape", "lease %d: %d placements at depth %d", l.ID, len(l.Placements), l.Depth)
			return
		}
		seen := map[int]bool{}
		for _, pl := range l.Placements {
			if seen[pl.FPGA] {
				h.fail(step, "duplicate-device", "lease %d holds device %d twice", l.ID, pl.FPGA)
				return
			}
			seen[pl.FPGA] = true
			occupied[pl.FPGA] += pl.Blocks
		}
		ladder, ok := ladders[l.Spec]
		if !ok {
			var lerr error
			ladder, lerr = h.svc.FeasibleDepths(l.Spec)
			if lerr != nil {
				h.fail(step, "feasible-depth", "FeasibleDepths(%v): %v", l.Spec, lerr)
				return
			}
			ladders[l.Spec] = ladder
		}
		onLadder := false
		for _, d := range ladder {
			if d == l.Depth {
				onLadder = true
				break
			}
		}
		if !onLadder {
			h.fail(step, "feasible-depth", "lease %d at depth %d, ladder is %v", l.ID, l.Depth, ladder)
			return
		}
	}
	for _, f := range h.svc.Status().FPGAs {
		if got := f.TotalBlocks - f.FreeBlocks; got != occupied[f.ID] {
			h.fail(step, "placement-conservation",
				"device %d: %d blocks occupied, leases account for %d", f.ID, got, occupied[f.ID])
			return
		}
	}

	// Engine/tombstone consistency in the data plane.
	if err := h.dp.CheckInvariants(); err != nil {
		h.fail(step, "engine-tombstone", "%v", err)
		return
	}

	// Quota conservation: the service's per-tenant ownership and usage
	// must match the model's lease-owner map exactly, and no tenant may
	// ever hold more than any configured quota grants.
	if h.reg != nil {
		owned := map[string]int{}
		for _, l := range leases {
			if want := h.leaseTenant[l.ID]; l.Tenant != want {
				h.fail(step, "quota-conservation",
					"lease %d owned by %q, model says %q", l.ID, l.Tenant, want)
				return
			}
			if l.Tenant != "" {
				owned[l.Tenant]++
			}
		}
		for _, t := range h.reg.List() {
			lu, du, bu := h.svc.TenantUsage(t.ID)
			if lu != owned[t.ID] {
				h.fail(step, "quota-conservation",
					"tenant %s: service reports %d leases, model owns %d", t.ID, lu, owned[t.ID])
				return
			}
			if q := t.Quotas.MaxLeases; q > 0 && lu > q {
				h.fail(step, "quota-conservation", "tenant %s holds %d leases over quota %d", t.ID, lu, q)
				return
			}
			if q := t.Quotas.MaxDevices; q > 0 && du > q {
				h.fail(step, "quota-conservation", "tenant %s holds %d devices over quota %d", t.ID, du, q)
				return
			}
			if q := t.Quotas.MaxBlocks; q > 0 && bu > q {
				h.fail(step, "quota-conservation", "tenant %s holds %d blocks over quota %d", t.ID, bu, q)
				return
			}
		}

		// Per-tenant counter accounting: every tenant-labelled expvar
		// delta must equal what the attributed events predict, the fair
		// queue must drain to zero depth between events, and nothing in
		// the sim path may trip the auth counters (no HTTP runs here).
		tcur := metrics.TenantCounters()
		tdelta := func(name, id string) int64 { return tcur[name][id] - h.tenantBase[name][id] }
		for _, t := range h.reg.List() {
			id := t.ID
			for _, c := range []struct {
				name string
				want int64
			}{
				{"mlv_tenant_requests", h.expTenantReq[id]},
				{"mlv_tenant_infers_served", h.expTenantServed[id]},
				{"mlv_tenant_rejections", h.expTenantRej[id]},
				{"mlv_tenant_queue_depth", 0},
				{"mlv_tenant_auth_failures", 0},
			} {
				if got := tdelta(c.name, id); got != c.want {
					h.fail(step, "tenant-accounting",
						"tenant %s: %s moved %d, events account for %d", id, c.name, got, c.want)
					return
				}
			}
		}
	}

	// Artifact-cache conservation: the compile runs once per distinct
	// compile plan ever attempted (the singleflight memo absorbs every
	// repeat, including deploys later shed on quota or capacity), and
	// nothing may be dropped as corrupt.
	if st, want := h.store.Stats(), int64(len(h.keySeen)); st.Computes != want || st.CorruptDropped != 0 {
		h.fail(step, "artifact-cache",
			"computes=%d corrupt=%d, want exactly %d compiles and 0 corrupt drops", st.Computes, st.CorruptDropped, want)
		return
	}

	// Snapshot conservation: every event joins its in-flight work before
	// returning, so between events no stream is mid-checkpoint — every
	// capture must have found its restore (explicit preemption, automatic
	// preemption and transplant alike; a capture with no restore is a
	// dropped stream restarting from scratch), preemption evictions must
	// pair one-to-one with preemption restores, and defrag moves must
	// match the event model exactly. Drain checkpoints are deliberately
	// outside this family: they are terminal by design (no restore ever
	// follows), so they live in a separate counter. Checked before the
	// generic counter families because a dropped checkpoint also skews
	// batch and admission accounting downstream — the root cause should
	// name the violation.
	pcur := metrics.SnapshotCounters()
	pdelta := func(name string) int64 { return pcur[name] - h.snapBase[name] }
	if c, rs := pdelta("mlv_snapshot_captures"), pdelta("mlv_snapshot_restores"); c != rs {
		h.fail(step, "snapshot-conservation",
			"mlv_snapshot_captures moved %d, mlv_snapshot_restores %d: a checkpoint was captured and never restored", c, rs)
		return
	}
	if ev, rs := pdelta("mlv_preempt_evictions"), pdelta("mlv_preempt_restores"); ev != rs {
		h.fail(step, "snapshot-conservation",
			"mlv_preempt_evictions moved %d, mlv_preempt_restores %d", ev, rs)
		return
	}
	if got := pdelta("mlv_defrag_moves"); got != h.expDefragMoves {
		h.fail(step, "snapshot-conservation",
			"mlv_defrag_moves moved %d, events account for %d", got, h.expDefragMoves)
		return
	}

	// Counter conservation: every expvar delta must equal what the event
	// model predicts (batches are bounded, not pinned: riders per batch
	// depend on goroutine interleaving, which the results never do).
	cur := metrics.Counters()
	delta := func(name string) int64 { return cur[name] - h.base[name] }
	exact := []struct {
		name string
		want int64
	}{
		{"mlv_leases_active", int64(len(h.live))},
		{"mlv_infers_served", h.expInfers},
		{"mlv_migrations", h.expMigrations},
		{"mlv_migration_failures", h.expMigFailures},
		{"mlv_heartbeat_misses", h.expHbMisses},
		{"mlv_devices_condemned", h.expCondemned},
	}
	for _, c := range exact {
		if got := delta(c.name); got != c.want {
			h.fail(step, "counter-conservation", "%s moved %d, events account for %d", c.name, got, c.want)
			return
		}
	}
	if bf := delta("mlv_batches_flushed"); bf < h.expInferEvents || bf > h.expInfers {
		h.fail(step, "batch-conservation",
			"mlv_batches_flushed moved %d, outside [%d, %d]", bf, h.expInferEvents, h.expInfers)
		return
	}

	// Slot conservation in the continuous plane: every infer event joins
	// its requests before returning and retirement settles all accounting
	// before answering, so between events no stream is resident — the
	// active-slot gauge must be exactly back at its baseline (a residue is
	// a leaked slot: admitted capacity that never came back), and each
	// served request accounts for exactly one slot admission.
	scur := metrics.SlotCounters()
	sdelta := func(name string) int64 { return scur[name] - h.slotBase[name] }
	if got := sdelta("mlv_slots_active"); got != 0 {
		h.fail(step, "slot-conservation",
			"mlv_slots_active residue %d with no request in flight", got)
		return
	}
	if !h.o.Infer.Flush {
		if got := sdelta("mlv_admissions"); got != h.expInfers {
			h.fail(step, "slot-conservation",
				"mlv_admissions moved %d, events account for %d", got, h.expInfers)
			return
		}
		if occ, rounds := sdelta("mlv_slot_round_occupancy"), sdelta("mlv_slot_rounds"); occ < rounds {
			h.fail(step, "slot-conservation",
				"mlv_slot_round_occupancy %d below mlv_slot_rounds %d: a round ran with an empty cohort", occ, rounds)
			return
		}
	}
}

// inputsFor derives a request's input tensor from (lease, seed) alone, so
// replaying the pair replays the exact bits.
func inputsFor(spec kernels.LayerSpec, leaseID int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed<<20 ^ int64(leaseID)))
	in := make([][]float64, spec.TimeSteps)
	for t := range in {
		v := make([]float64, spec.Hidden)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		in[t] = v
	}
	return in
}

// hashOutputs folds an output tensor's exact bits, so equal hashes mean
// bit-identical results.
func hashOutputs(outs [][]float64) uint64 {
	hsh := fnv.New64a()
	var b [8]byte
	for _, row := range outs {
		for _, v := range row {
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
			hsh.Write(b[:])
		}
	}
	return hsh.Sum64()
}

func hashTrace(trace []string) uint64 {
	hsh := fnv.New64a()
	for _, line := range trace {
		hsh.Write([]byte(line))
		hsh.Write([]byte{'\n'})
	}
	return hsh.Sum64()
}
