package simtest

// minimize shrinks a failing schedule to a locally minimal event list
// that still violates the same invariant, ddmin-style: try removing
// chunks of halving size, keep any removal that reproduces, and stop
// when no single event can be removed (or the run budget is spent —
// shrinking is best-effort, the seed always reproduces the original).
// Events resolve their random draws against live state, so a schedule
// stays executable after any subset of it is deleted.
func minimize(o Options, sched []Event, orig *Violation) (minimal []Event, trace []string, runs int) {
	const maxRuns = 250
	repro := func(cand []Event) ([]string, bool) {
		if runs >= maxRuns {
			return nil, false
		}
		runs++
		out, err := runSchedule(o, cand)
		if err != nil || out.violation == nil || out.violation.Invariant != orig.Invariant {
			return nil, false
		}
		return out.trace, true
	}
	cur := append([]Event(nil), sched...)
	for chunk := (len(cur) + 1) / 2; chunk >= 1; {
		removed := false
		for start := 0; start < len(cur); {
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			cand := make([]Event, 0, len(cur)-(end-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[end:]...)
			if tr, ok := repro(cand); ok {
				// Keep scanning from the same offset: the window now holds
				// the events that followed the removed chunk.
				cur, trace, removed = cand, tr, true
			} else {
				start = end
			}
		}
		if !removed {
			if chunk == 1 {
				break
			}
			chunk = (chunk + 1) / 2
		}
	}
	return cur, trace, runs
}
