package simtest

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// The sweep knobs. `make simtest` passes -seeds=20 -steps=500 (or the
// SIMSEEDS/SIMSTEPS make variables); the bare `go test` defaults keep
// tier-1 runs quick.
var (
	flagSeeds = flag.Int("seeds", 8, "number of seeds TestSimSweep runs")
	flagSteps = flag.Int("steps", 250, "schedule events per simulated run")
	flagSeed  = flag.Int64("seed", 0, "single seed for TestSimSeed (0 = skip; use to reproduce a printed failure)")
)

// writeReport dumps a failing run's report (seed, violation, minimized
// ddmin schedule, minimal trace) where CI can collect it as an artifact.
// The directory comes from SIMTEST_REPORT_DIR; unset means skip.
func writeReport(t *testing.T, res *Result) {
	dir := os.Getenv("SIMTEST_REPORT_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("simtest report dir: %v", err)
		return
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-seed-%d.txt", t.Name(), res.Seed))
	if err := os.WriteFile(path, []byte(res.Report()), 0o644); err != nil {
		t.Logf("simtest report write: %v", err)
		return
	}
	t.Logf("wrote failure report to %s", path)
}

// TestSimSweep is the harness's front door: one deterministic run per
// seed, failing with the minimized schedule on any invariant violation.
func TestSimSweep(t *testing.T) {
	seeds, steps := *flagSeeds, *flagSteps
	if testing.Short() {
		if seeds > 4 {
			seeds = 4
		}
		if steps > 120 {
			steps = 120
		}
	}
	for s := 1; s <= seeds; s++ {
		o := DefaultOptions(int64(s))
		o.Steps = steps
		res, err := Run(o)
		if err != nil {
			t.Fatalf("seed %d: %v", s, err)
		}
		if res.Violation != nil {
			writeReport(t, res)
			t.Fatalf("\n%s", res.Report())
		}
		t.Logf("%s", res.Report())
	}
}

// TestSimSeed replays exactly one seed, the reproduction path printed in
// every failure report.
func TestSimSeed(t *testing.T) {
	if *flagSeed == 0 {
		t.Skip("pass -seed=N to replay a single seed")
	}
	o := DefaultOptions(*flagSeed)
	o.Steps = *flagSteps
	res, err := Run(o)
	if err != nil {
		t.Fatalf("seed %d: %v", *flagSeed, err)
	}
	for _, line := range res.Trace {
		t.Log(line)
	}
	if res.Violation != nil {
		writeReport(t, res)
		t.Fatalf("\n%s", res.Report())
	}
}

// TestSimPreemptionSchedule pins a fixed, checkpoint-heavy schedule: every
// third event is a preemption, transplant or defrag against live serving
// traffic, with heartbeats keeping the fleet healthy. The run must stay
// golden (preempted streams finish bit-identical) and replay bit-for-bit
// — this is the CI regression for the checkpoint/restore path as a whole.
func TestSimPreemptionSchedule(t *testing.T) {
	o := DefaultOptions(99)
	rng := rand.New(rand.NewSource(99))
	pattern := []EventKind{
		EvHeartbeat, EvInfer, EvPreempt,
		EvHeartbeat, EvInfer, EvRestore,
		EvHeartbeat, EvTick, EvDefrag,
	}
	steps := 108
	if testing.Short() {
		steps = 54
	}
	sched := make([]Event, steps)
	for i := range sched {
		sched[i] = Event{Kind: pattern[i%len(pattern)], R: rng.Uint64()}
	}
	run := func() *outcome {
		out, err := runSchedule(o, sched)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a := run()
	if a.violation != nil {
		writeReport(t, &Result{Seed: o.Seed, Schedule: sched, Trace: a.trace,
			TraceHash: hashTrace(a.trace), Violation: a.violation})
		t.Fatalf("preemption schedule violated %q: %s", a.violation.Invariant, a.violation.Detail)
	}
	b := run()
	if b.violation != nil {
		t.Fatalf("replay violated %q: %s", b.violation.Invariant, b.violation.Detail)
	}
	if hashTrace(a.trace) != hashTrace(b.trace) {
		for i := range a.trace {
			if i < len(b.trace) && a.trace[i] != b.trace[i] {
				t.Errorf("trace diverged at line %d:\n  run A: %s\n  run B: %s", i, a.trace[i], b.trace[i])
				break
			}
		}
		t.Fatalf("preemption schedule is not deterministic: %016x vs %016x",
			hashTrace(a.trace), hashTrace(b.trace))
	}
}

// TestSimDeterminism runs the same seed twice and demands the same event
// trace, bit for bit — the property every other guarantee (replay from a
// printed seed, shrinking against a stable failure) rests on.
func TestSimDeterminism(t *testing.T) {
	o := DefaultOptions(3)
	o.Steps = 200
	if testing.Short() {
		o.Steps = 80
	}
	a, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if (a.Violation == nil) != (b.Violation == nil) {
		t.Fatalf("verdict diverged: %v vs %v", a.Violation, b.Violation)
	}
	if len(a.Trace) != len(b.Trace) {
		t.Fatalf("trace length diverged: %d vs %d", len(a.Trace), len(b.Trace))
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatalf("trace diverged at line %d:\n  run A: %s\n  run B: %s", i, a.Trace[i], b.Trace[i])
		}
	}
	if a.TraceHash != b.TraceHash {
		t.Fatalf("trace hash diverged: %016x vs %016x", a.TraceHash, b.TraceHash)
	}
}

// TestScheduleDeterministic pins the generator itself: a pure function of
// (seed, steps), and distinct seeds actually diverge.
func TestScheduleDeterministic(t *testing.T) {
	a, b := Schedule(42, 300), Schedule(42, 300)
	if len(a) != len(b) {
		t.Fatalf("lengths diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := Schedule(43, 300)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seeds 42 and 43 generated identical schedules")
	}
	counts := map[EventKind]int{}
	for _, ev := range a {
		counts[ev.Kind]++
	}
	for k := EventKind(0); k < numEventKinds; k++ {
		if counts[k] == 0 {
			t.Errorf("300-event schedule never emitted %s", k)
		}
	}
}

// TestSimCatchesInjectedBugs validates the checkers against known bugs:
// each armed fault must be caught by the invariant built to catch it,
// and the shrinking pass must hand back a small reproduction.
func TestSimCatchesInjectedBugs(t *testing.T) {
	cases := []struct {
		name      string
		fault     Fault
		invariant string
	}{
		{"skip-release-tombstone", FaultSkipTombstone, "engine-tombstone"},
		{"skip-migration-metric", FaultSkipMigrationMetric, "counter-conservation"},
		{"skip-tenant-served-metric", FaultSkipTenantServed, "tenant-accounting"},
		{"leak-slot", FaultLeakSlot, "slot-conservation"},
		{"leak-snapshot", FaultLeakSnapshot, "snapshot-conservation"},
		{"restore-at-zero", FaultRestoreAtZero, "golden-equivalence"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var caught *Result
			for seed := int64(1); seed <= 6; seed++ {
				o := DefaultOptions(seed)
				o.Steps = 120
				o.Fault = tc.fault
				res, err := Run(o)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if res.Violation != nil {
					caught = res
					break
				}
			}
			if caught == nil {
				t.Fatalf("no seed in 1..6 caught fault %q", tc.fault)
			}
			if caught.Violation.Invariant != tc.invariant {
				t.Fatalf("fault %q caught by %q, want %q:\n%s",
					tc.fault, caught.Violation.Invariant, tc.invariant, caught.Report())
			}
			if len(caught.Minimal) == 0 || len(caught.Minimal) >= len(caught.Schedule) {
				t.Fatalf("shrinking did not reduce the schedule (%d of %d events):\n%s",
					len(caught.Minimal), len(caught.Schedule), caught.Report())
			}
			t.Logf("fault %q caught and minimized:\n%s", tc.fault, caught.Report())
		})
	}
}
