package simtest

import (
	"time"

	"mlvfpga/internal/des"
	"mlvfpga/internal/kernels"
	"mlvfpga/internal/metrics"
	"mlvfpga/internal/rms"
)

// InvariantFamilies lists every invariant the harness audits after each
// event, in the order checkInvariants runs them. Scenario reports embed
// the list so a report is self-describing about what "green" certified.
func InvariantFamilies() []string {
	return []string{
		"lease-conservation",
		"placement-shape",
		"duplicate-device",
		"placement-conservation",
		"feasible-depth",
		"engine-tombstone",
		"quota-conservation",
		"tenant-accounting",
		"artifact-cache",
		"warm-deploy",
		"snapshot-conservation",
		"counter-conservation",
		"batch-conservation",
		"slot-conservation",
		"golden-equivalence",
		"infer-served",
		"stranded-placement",
	}
}

// Stack is the exported face of the simtest harness: one fresh
// service + data plane + control plane wired to one DES engine, with the
// model-based invariant checkers attached. The random-schedule sweep in
// this package drives the same harness through Run; Stack exposes it to
// deterministic external drivers (the scenario engine) that choose their
// own events — explicit devices, explicit leases, explicit request seeds —
// instead of drawing them from a PRNG.
//
// The Stack starts empty: no preamble leases, no specs compiled. All
// methods must be called from the DES goroutine (timer callbacks or
// between Run calls); the only internal concurrency is inside Serve,
// which joins before returning.
type Stack struct {
	h *harness
	// step is the event counter stamped on traces and violations; external
	// drivers advance it via Step.
	step int
}

// NewStack builds a fresh stack from the options. Unlike the sweep
// harness, no preamble leases are deployed — the driver owns every deploy.
func NewStack(o Options) (*Stack, error) {
	h, err := newHarness(o, false)
	if err != nil {
		return nil, err
	}
	return &Stack{h: h}, nil
}

// Close shuts the data plane down. After Close the stack must not be used.
func (s *Stack) Close() { s.h.dp.Close() }

// Engine returns the DES engine the control plane's clock reads. Drivers
// lay their timeline onto it and call Run.
func (s *Stack) Engine() *des.Engine { return s.h.eng }

// Service exposes the resource-management service for read-side queries
// (lease latency, placements, cluster status).
func (s *Stack) Service() *rms.Service { return s.h.svc }

// Step advances and returns the event counter used in traces/violations.
func (s *Stack) Step() int { s.step++; return s.step }

// Devices returns the device IDs in the simulated cluster, ascending.
func (s *Stack) Devices() []int { return append([]int(nil), s.h.devices...) }

// Live returns the IDs of leases the model says are live, in deploy order.
func (s *Stack) Live() []int { return append([]int(nil), s.h.live...) }

// Violation returns the first invariant breach, or nil while green.
func (s *Stack) Violation() *Violation { return s.h.violation }

// Trace returns the resolved deterministic event log so far.
func (s *Stack) Trace() []string { return append([]string(nil), s.h.trace...) }

// TraceHash folds the trace into the same FNV-64a digest Result uses.
func (s *Stack) TraceHash() uint64 { return hashTrace(s.h.trace) }

// Deploy deploys one lease of the given spec for the given tenant (empty
// for a tenantless run) and audits the admission decision. Returns
// (lease, true) on admission, (nil, true) on a correctly-shed attempt, and
// (nil, false) after recording a violation.
func (s *Stack) Deploy(spec kernels.LayerSpec, who string) (*rms.Lease, bool) {
	step := s.Step()
	l, ok := s.h.deployAs(step, spec, who)
	if !ok {
		return nil, false
	}
	if l == nil {
		s.h.tracef(step, "deploy shed tenant=%s", who)
		return nil, true
	}
	s.h.tracef(step, "deploy lease=%d depth=%d tenant=%s", l.ID, l.Depth, who)
	s.h.checkInvariants(step)
	return l, s.h.violation == nil
}

// Release releases a lease and audits the teardown. Reports whether the
// stack is still green.
func (s *Stack) Release(id int) bool {
	step := s.Step()
	if err := s.h.dp.Release(id); err != nil {
		s.h.fail(step, "release-error", "lease %d: %v", id, err)
		return false
	}
	for i, v := range s.h.live {
		if v == id {
			s.h.live = append(s.h.live[:i], s.h.live[i+1:]...)
			break
		}
	}
	delete(s.h.loads, id)
	delete(s.h.leaseTenant, id)
	delete(s.h.leaseSpec, id)
	s.h.tracef(step, "release lease=%d", id)
	s.h.checkInvariants(step)
	return s.h.violation == nil
}

// Serve runs one concurrent batch of len(seeds) requests on the lease,
// attributed to tenant who, joins it, and audits the outputs against the
// golden (lease, seed) memo plus every invariant family. Reports whether
// the stack is still green.
func (s *Stack) Serve(id int, who string, seeds []int64) bool {
	step := s.Step()
	s.h.serveOn(step, id, who, seeds, "infer", nil)
	if s.h.violation == nil {
		s.h.checkInvariants(step)
	}
	return s.h.violation == nil
}

// OfferLoad scripts the queue depth the autoscaler sees for a lease.
func (s *Stack) OfferLoad(id, queueDepth int) {
	step := s.Step()
	s.h.loads[id] = rms.LoadStats{QueueDepth: queueDepth}
	s.h.tracef(step, "load lease=%d queue=%d", id, queueDepth)
}

// Kill marks a device dead: it stops heartbeating until Revive. The
// registry notices after Control's SuspectAfter/DeadAfter windows.
func (s *Stack) Kill(device int) {
	s.h.killed[device] = true
	s.h.tracef(s.Step(), "kill dev=%d", device)
}

// Revive brings a killed device back and beats it once immediately.
func (s *Stack) Revive(device int) bool {
	step := s.Step()
	delete(s.h.killed, device)
	if err := s.h.cp.Heartbeat(device); err != nil {
		s.h.fail(step, "heartbeat-error", "device %d: %v", device, err)
		return false
	}
	s.h.tracef(step, "revive dev=%d", device)
	return true
}

// Drain starts an administrative drain of a device.
func (s *Stack) Drain(device int) bool {
	step := s.Step()
	if err := s.h.cp.Drain(device); err != nil {
		s.h.fail(step, "drain-error", "device %d: %v", device, err)
		return false
	}
	s.h.drained[device] = true
	s.h.tracef(step, "drain dev=%d", device)
	return true
}

// Undrain returns a draining device to service.
func (s *Stack) Undrain(device int) bool {
	step := s.Step()
	if err := s.h.cp.Undrain(device); err != nil {
		s.h.fail(step, "undrain-error", "device %d: %v", device, err)
		return false
	}
	delete(s.h.drained, device)
	s.h.tracef(step, "undrain dev=%d", device)
	return true
}

// HeartbeatAll beats every device not currently killed.
func (s *Stack) HeartbeatAll() bool {
	step := s.Step()
	if s.h.violation != nil {
		return false
	}
	s.h.doHeartbeat(step)
	return s.h.violation == nil
}

// Tick runs one control-plane reconciliation round (health decay,
// evacuations, autoscaling) and folds its report into the counter model.
func (s *Stack) Tick() bool {
	step := s.Step()
	if s.h.violation != nil {
		return false
	}
	s.h.doTick(step)
	s.h.checkInvariants(step)
	return s.h.violation == nil
}

// Settle runs one quiesce round: heartbeat survivors, tick, check. The
// stack enters settling mode, so evacuations that verifiably fail for
// lack of capacity excuse their lease from the stranded check.
func (s *Stack) Settle() bool {
	s.h.settle(s.Step())
	return s.h.violation == nil
}

// CheckStranded runs the end-of-run stranded-placement audit.
func (s *Stack) CheckStranded() bool {
	if s.h.violation == nil {
		s.h.checkStranded(s.Step())
	}
	return s.h.violation == nil
}

// Check audits every invariant family immediately.
func (s *Stack) Check() bool {
	if s.h.violation == nil {
		s.h.checkInvariants(s.Step())
	}
	return s.h.violation == nil
}

// LeaseLatency returns the modelled per-inference latency of a live
// lease — the scenario engine's queueing service time.
func (s *Stack) LeaseLatency(id int) (time.Duration, bool) {
	l, ok := s.h.svc.Lease(id)
	if !ok {
		return 0, false
	}
	return l.Latency, true
}

// CounterDeltas returns the process-global counters as deltas from the
// stack's birth (the counters are shared across stacks in one process, so
// only deltas are meaningful).
func (s *Stack) CounterDeltas() map[string]int64 {
	out := map[string]int64{}
	for name, v := range metrics.Counters() {
		out[name] = v - s.h.base[name]
	}
	for name, v := range metrics.SlotCounters() {
		out[name] = v - s.h.slotBase[name]
	}
	for name, v := range metrics.SnapshotCounters() {
		out[name] = v - s.h.snapBase[name]
	}
	return out
}
