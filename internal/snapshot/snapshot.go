// Package snapshot defines the wire format for ISA-level checkpoints of
// live accelerator state. A Slot captures everything one in-flight stream
// owns — its vector register file and its banked DRAM window — plus the
// stream program counter (the next timestep) and a kernel identity hash,
// which together are sufficient to resume the stream bit-identically on
// any machine built from the same kernel: matrix tiles are machine-level
// state re-established idempotently by the kernel's SharedInit program,
// and quantization memos are derived caches that the restore path
// invalidates so they are recomputed deterministically.
//
// The encoding mirrors the artifact store's blob discipline: a fixed
// magic, little-endian length framing, and a trailing FNV-64a checksum
// over the payload, so a truncated or corrupted checkpoint is detected
// before any state is installed.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
)

// Magic identifies a serialized snapshot blob.
const Magic = "MLVSNAP1"

// FormatVersion is bumped whenever the payload layout changes; Decode
// rejects snapshots written by a different version.
const FormatVersion = 1

// Codec errors.
var (
	ErrBadMagic  = errors.New("snapshot: bad magic")
	ErrTruncated = errors.New("snapshot: truncated blob")
	ErrChecksum  = errors.New("snapshot: checksum mismatch")
	ErrVersion   = errors.New("snapshot: unsupported format version")
)

// Slot is one stream's checkpoint: the architectural state a preempted
// or migrated stream needs to resume exactly where it stopped.
type Slot struct {
	// KernelHash identifies the kernel contract the state depends on
	// (cell kind, shapes, quantization parameters). Restore onto a kernel
	// with a different hash is refused — the register layout or numerics
	// would differ.
	KernelHash uint64
	// Tau is the stream program counter: the next timestep to execute.
	Tau uint32
	// Steps is the stream's total timestep count.
	Steps uint32
	// Regs is the vector register file as raw float16 bits; a nil entry
	// is a register the stream never wrote (reading it is still an error
	// after restore, exactly as before the checkpoint).
	Regs [][]uint16
	// Window is the stream's banked DRAM window — the contiguous
	// [base, base+stride) range holding its inputs and outputs-so-far.
	Window []uint16
}

// Bytes returns the encoded size of the slot's payload in bytes, used
// for accounting snapshot volume.
func (s *Slot) Bytes() int { return len(s.encode()) }

// Encode serializes the slot: magic, LE payload length, payload,
// FNV-64a checksum of the payload.
func (s *Slot) Encode() []byte {
	payload := s.encode()
	buf := make([]byte, 0, len(Magic)+4+len(payload)+8)
	buf = append(buf, Magic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	h := fnv.New64a()
	h.Write(payload)
	buf = binary.LittleEndian.AppendUint64(buf, h.Sum64())
	return buf
}

func (s *Slot) encode() []byte {
	n := 2 + 8 + 4 + 4 + 2
	for _, r := range s.Regs {
		n += 1 + 4 + 2*len(r)
	}
	n += 4 + 2*len(s.Window)
	b := make([]byte, 0, n)
	b = binary.LittleEndian.AppendUint16(b, FormatVersion)
	b = binary.LittleEndian.AppendUint64(b, s.KernelHash)
	b = binary.LittleEndian.AppendUint32(b, s.Tau)
	b = binary.LittleEndian.AppendUint32(b, s.Steps)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s.Regs)))
	for _, r := range s.Regs {
		if r == nil {
			b = append(b, 0)
			continue
		}
		b = append(b, 1)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(r)))
		for _, v := range r {
			b = binary.LittleEndian.AppendUint16(b, v)
		}
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s.Window)))
	for _, v := range s.Window {
		b = binary.LittleEndian.AppendUint16(b, v)
	}
	return b
}

// Decode parses an encoded slot, verifying magic, framing, format
// version and checksum before returning any state.
func Decode(blob []byte) (*Slot, error) {
	if len(blob) < len(Magic)+4 {
		return nil, ErrTruncated
	}
	if string(blob[:len(Magic)]) != Magic {
		return nil, ErrBadMagic
	}
	plen := int(binary.LittleEndian.Uint32(blob[len(Magic):]))
	rest := blob[len(Magic)+4:]
	if len(rest) < plen+8 {
		return nil, ErrTruncated
	}
	payload := rest[:plen]
	want := binary.LittleEndian.Uint64(rest[plen:])
	h := fnv.New64a()
	h.Write(payload)
	if h.Sum64() != want {
		return nil, ErrChecksum
	}
	return decodePayload(payload)
}

func decodePayload(b []byte) (*Slot, error) {
	r := reader{b: b}
	ver := r.u16()
	if r.err == nil && ver != FormatVersion {
		return nil, fmt.Errorf("%w: %d (want %d)", ErrVersion, ver, FormatVersion)
	}
	s := &Slot{
		KernelHash: r.u64(),
		Tau:        r.u32(),
		Steps:      r.u32(),
	}
	nregs := int(r.u16())
	if r.err == nil {
		s.Regs = make([][]uint16, nregs)
		for i := 0; i < nregs && r.err == nil; i++ {
			if r.u8() == 0 {
				continue
			}
			s.Regs[i] = r.words(int(r.u32()))
		}
	}
	s.Window = r.words(int(r.u32()))
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrTruncated, len(r.b))
	}
	return s, nil
}

// reader is a little-endian payload cursor; the first short read poisons
// it so decodePayload can check err once at the end.
type reader struct {
	b   []byte
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.b) < n {
		r.err = ErrTruncated
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) words(n int) []uint16 {
	b := r.take(2 * n)
	if b == nil {
		return nil
	}
	out := make([]uint16, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint16(b[2*i:])
	}
	return out
}
