package snapshot

import (
	"errors"
	"reflect"
	"testing"
)

func sample() *Slot {
	return &Slot{
		KernelHash: 0xdeadbeefcafef00d,
		Tau:        7,
		Steps:      25,
		Regs: [][]uint16{
			{1, 2, 3},
			nil,
			{0xffff, 0, 0x8000, 42},
			nil,
		},
		Window: []uint16{9, 8, 7, 6, 5},
	}
}

func TestRoundTrip(t *testing.T) {
	s := sample()
	got, err := Decode(s.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, s)
	}
}

func TestRoundTripEmpty(t *testing.T) {
	s := &Slot{KernelHash: 1, Regs: [][]uint16{nil, nil}, Window: []uint16{}}
	got, err := Decode(s.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.KernelHash != 1 || len(got.Regs) != 2 || got.Regs[0] != nil || len(got.Window) != 0 {
		t.Fatalf("empty round trip: %#v", got)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	blob := sample().Encode()
	for i := range blob {
		mut := append([]byte{}, blob...)
		mut[i] ^= 0x5a
		if _, err := Decode(mut); err == nil {
			t.Fatalf("flipping byte %d went undetected", i)
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	blob := sample().Encode()
	for n := 0; n < len(blob); n++ {
		if _, err := Decode(blob[:n]); err == nil {
			t.Fatalf("truncation to %d bytes went undetected", n)
		}
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	blob := sample().Encode()
	blob[0] = 'X'
	if _, err := Decode(blob); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestDecodeRejectsFutureVersion(t *testing.T) {
	s := sample()
	payload := s.encode()
	payload[0] = FormatVersion + 1 // little-endian version low byte
	blob := append([]byte{}, Magic...)
	blob = append(blob, byte(len(payload)), byte(len(payload)>>8), byte(len(payload)>>16), byte(len(payload)>>24))
	blob = append(blob, payload...)
	// Recompute a valid checksum so only the version differs.
	good, err := Decode(s.Encode())
	_ = good
	if err != nil {
		t.Fatalf("baseline decode: %v", err)
	}
	sum := fnvSum(payload)
	for i := 0; i < 8; i++ {
		blob = append(blob, byte(sum>>(8*i)))
	}
	if _, err := Decode(blob); !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

func fnvSum(b []byte) uint64 {
	const offset64 = 14695981039346656037
	const prime64 = 1099511628211
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

func TestBytesMatchesEncodedPayload(t *testing.T) {
	s := sample()
	if got, want := s.Bytes(), len(s.encode()); got != want {
		t.Fatalf("Bytes() = %d, want %d", got, want)
	}
}
