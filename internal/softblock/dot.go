package softblock

import (
	"fmt"
	"strings"
)

// DOT renders the soft-block tree in Graphviz format for visual inspection
// (e.g. `mlv-decompose -dot tree.dot && dot -Tsvg tree.dot`). Leaves show
// their module and resources; pattern nodes show their kind, with pipeline
// edges labelled by stage bandwidth.
func (b *Block) DOT(name string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", name)
	sb.WriteString("  rankdir=TB;\n  node [fontname=\"monospace\"];\n")
	b.dotNode(&sb)
	sb.WriteString("}\n")
	return sb.String()
}

func (b *Block) dotNode(sb *strings.Builder) {
	switch b.Kind {
	case Leaf:
		fmt.Fprintf(sb, "  %q [shape=box, label=\"%s\\n%s\\n%s\"];\n",
			b.ID, b.ID, b.ModuleKey, compactRes(b))
	case DataParallel:
		fmt.Fprintf(sb, "  %q [shape=invtrapezium, style=filled, fillcolor=lightblue, label=\"data x%d\\n%s\"];\n",
			b.ID, len(b.Children), b.ID)
	case Pipeline:
		fmt.Fprintf(sb, "  %q [shape=cds, style=filled, fillcolor=lightyellow, label=\"pipeline\\n%s\"];\n",
			b.ID, b.ID)
	}
	for i, c := range b.Children {
		c.dotNode(sb)
		label := ""
		if b.Kind == Pipeline && i > 0 {
			label = fmt.Sprintf(" [label=\"%db\"]", b.StageBits[i-1])
		}
		fmt.Fprintf(sb, "  %q -> %q%s;\n", b.ID, c.ID, label)
	}
}

func compactRes(b *Block) string {
	parts := []string{}
	if b.Resources.LUTs > 0 {
		parts = append(parts, fmt.Sprintf("%dL", b.Resources.LUTs))
	}
	if b.Resources.DSPs > 0 {
		parts = append(parts, fmt.Sprintf("%dD", b.Resources.DSPs))
	}
	if b.Resources.BRAMKb > 0 {
		parts = append(parts, fmt.Sprintf("%dKb", b.Resources.BRAMKb))
	}
	if b.Resources.URAMKb > 0 {
		parts = append(parts, fmt.Sprintf("%dKbU", b.Resources.URAMKb))
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, " ")
}
