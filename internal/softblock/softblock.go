// Package softblock implements the paper's new system abstraction (§2.1):
// a pool of soft blocks organized as a multi-level tree whose internal
// nodes are one of two primitive parallel patterns — data parallelism and
// pipeline parallelism. Leaf soft blocks hold one basic module; non-leaf
// blocks connect their children following one of the two patterns. The two
// primitive patterns are sufficient to construct complex/nested patterns
// such as reduction (Fig. 2c).
//
// Soft blocks carry *no* FPGA-specific resource constraint: their resource
// vectors are annotations, not capacities. That is what makes the
// abstraction a homogeneous view over a heterogeneous FPGA cluster and what
// lets the decomposing step run unconstrained.
package softblock

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"mlvfpga/internal/resource"
)

// Kind classifies a soft block.
type Kind int

const (
	// Leaf blocks contain one basic module (a Verilog module that
	// instantiates no other design module).
	Leaf Kind = iota
	// DataParallel blocks have identical children operating on disjoint
	// data (the SIMD pattern).
	DataParallel
	// Pipeline blocks have children chained through latency-insensitive
	// interfaces (the producer/consumer pattern).
	Pipeline
)

var kindNames = map[Kind]string{
	Leaf:         "leaf",
	DataParallel: "data",
	Pipeline:     "pipeline",
}

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// MarshalJSON renders the kind as its name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON parses a kind name.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for kk, n := range kindNames {
		if n == s {
			*k = kk
			return nil
		}
	}
	return fmt.Errorf("softblock: unknown kind %q", s)
}

// Block is one node of a soft-block tree.
type Block struct {
	// ID is unique within one accelerator's tree.
	ID   string `json:"id"`
	Kind Kind   `json:"kind"`

	// ModuleKey names the elaborated basic module held by a Leaf
	// (rtl.ElabModule.Key). Empty for non-leaves.
	ModuleKey string `json:"module_key,omitempty"`
	// Path is the hierarchical instance path of a Leaf's basic module in
	// the source RTL; informative only.
	Path string `json:"path,omitempty"`

	// Resources annotates the FPGA resources this subtree needs. For
	// non-leaf blocks this is the roll-up of the children.
	Resources resource.Vector `json:"resources"`

	// InBits/OutBits are the external interface widths of this block.
	InBits  int `json:"in_bits"`
	OutBits int `json:"out_bits"`

	// Children of a non-leaf block, in pattern order: pipeline children are
	// ordered producer to consumer; data-parallel children are
	// interchangeable copies.
	Children []*Block `json:"children,omitempty"`

	// StageBits annotates a Pipeline block with the connection bandwidth
	// (bits per element) between consecutive children:
	// StageBits[i] connects Children[i] and Children[i+1].
	StageBits []int `json:"stage_bits,omitempty"`
}

// NewLeaf builds a leaf soft block for a basic module.
func NewLeaf(id, moduleKey, path string, res resource.Vector, inBits, outBits int) *Block {
	return &Block{
		ID: id, Kind: Leaf, ModuleKey: moduleKey, Path: path,
		Resources: res, InBits: inBits, OutBits: outBits,
	}
}

// NewPipeline builds a pipeline block over children with the given
// inter-stage bandwidths (len(children)-1 entries).
func NewPipeline(id string, children []*Block, stageBits []int) *Block {
	b := &Block{ID: id, Kind: Pipeline, Children: children, StageBits: stageBits}
	b.recompute()
	return b
}

// NewDataParallel builds a data-parallel block over interchangeable copies.
func NewDataParallel(id string, children []*Block) *Block {
	b := &Block{ID: id, Kind: DataParallel, Children: children}
	b.recompute()
	return b
}

// recompute rolls up resources and interface widths from the children.
func (b *Block) recompute() {
	if b.Kind == Leaf {
		return
	}
	var res resource.Vector
	in, out := 0, 0
	for _, c := range b.Children {
		res = res.Add(c.Resources)
	}
	switch b.Kind {
	case Pipeline:
		if n := len(b.Children); n > 0 {
			in = b.Children[0].InBits
			out = b.Children[n-1].OutBits
		}
	case DataParallel:
		for _, c := range b.Children {
			in += c.InBits
			out += c.OutBits
		}
	}
	b.Resources = res
	b.InBits = in
	b.OutBits = out
}

// Recompute rolls up annotations over the whole subtree (children first).
func (b *Block) Recompute() {
	for _, c := range b.Children {
		c.Recompute()
	}
	b.recompute()
}

// Leaves returns the leaf blocks of the subtree in left-to-right order.
func (b *Block) Leaves() []*Block {
	if b.Kind == Leaf {
		return []*Block{b}
	}
	var out []*Block
	for _, c := range b.Children {
		out = append(out, c.Leaves()...)
	}
	return out
}

// NumLeaves counts leaf blocks.
func (b *Block) NumLeaves() int { return len(b.Leaves()) }

// Depth returns the tree height (a leaf has depth 1).
func (b *Block) Depth() int {
	max := 0
	for _, c := range b.Children {
		if d := c.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// Walk visits every block in the subtree, parents before children.
func (b *Block) Walk(fn func(*Block)) {
	fn(b)
	for _, c := range b.Children {
		c.Walk(fn)
	}
}

// Clone deep-copies the subtree.
func (b *Block) Clone() *Block {
	cp := *b
	cp.StageBits = append([]int{}, b.StageBits...)
	cp.Children = make([]*Block, len(b.Children))
	for i, c := range b.Children {
		cp.Children[i] = c.Clone()
	}
	if len(cp.Children) == 0 {
		cp.Children = nil
	}
	if len(cp.StageBits) == 0 {
		cp.StageBits = nil
	}
	return &cp
}

// Validation errors.
var (
	ErrLeafWithChildren = errors.New("softblock: leaf block has children")
	ErrTooFewChildren   = errors.New("softblock: pattern block needs at least 2 children")
	ErrStageBits        = errors.New("softblock: pipeline needs len(children)-1 stage bandwidths")
	ErrDuplicateID      = errors.New("softblock: duplicate block id")
	ErrDataMismatch     = errors.New("softblock: data-parallel children are not interchangeable")
)

// Validate checks the structural invariants of the subtree:
//   - leaves have no children and name a module;
//   - pattern nodes have >= 2 children;
//   - pipeline nodes carry len(children)-1 stage bandwidths;
//   - data-parallel children expose identical module structure;
//   - IDs are unique.
func (b *Block) Validate() error {
	seen := map[string]bool{}
	return b.validate(seen)
}

func (b *Block) validate(seen map[string]bool) error {
	if seen[b.ID] {
		return fmt.Errorf("%w: %q", ErrDuplicateID, b.ID)
	}
	seen[b.ID] = true
	switch b.Kind {
	case Leaf:
		if len(b.Children) > 0 {
			return fmt.Errorf("%w: %q", ErrLeafWithChildren, b.ID)
		}
		if b.ModuleKey == "" {
			return fmt.Errorf("softblock: leaf %q names no module", b.ID)
		}
		return nil
	case Pipeline:
		if len(b.Children) < 2 {
			return fmt.Errorf("%w: pipeline %q has %d", ErrTooFewChildren, b.ID, len(b.Children))
		}
		if len(b.StageBits) != len(b.Children)-1 {
			return fmt.Errorf("%w: %q has %d children, %d bandwidths",
				ErrStageBits, b.ID, len(b.Children), len(b.StageBits))
		}
	case DataParallel:
		if len(b.Children) < 2 {
			return fmt.Errorf("%w: data %q has %d", ErrTooFewChildren, b.ID, len(b.Children))
		}
		sig := b.Children[0].Signature()
		for _, c := range b.Children[1:] {
			if c.Signature() != sig {
				return fmt.Errorf("%w: under %q", ErrDataMismatch, b.ID)
			}
		}
	default:
		return fmt.Errorf("softblock: block %q has invalid kind %d", b.ID, int(b.Kind))
	}
	for _, c := range b.Children {
		if err := c.validate(seen); err != nil {
			return err
		}
	}
	return nil
}

// Signature returns a canonical string describing the subtree's structure
// (kinds and module keys, ignoring IDs and paths). Data-parallel siblings
// must share a signature.
func (b *Block) Signature() string {
	var sb strings.Builder
	b.signature(&sb)
	return sb.String()
}

func (b *Block) signature(sb *strings.Builder) {
	switch b.Kind {
	case Leaf:
		fmt.Fprintf(sb, "L<%s>", b.ModuleKey)
	case Pipeline:
		sb.WriteString("P(")
		for i, c := range b.Children {
			if i > 0 {
				fmt.Fprintf(sb, "-%d-", b.StageBits[i-1])
			}
			c.signature(sb)
		}
		sb.WriteString(")")
	case DataParallel:
		fmt.Fprintf(sb, "D%d(", len(b.Children))
		if len(b.Children) > 0 {
			b.Children[0].signature(sb)
		}
		sb.WriteString(")")
	}
}

// String renders the tree in indented form for debugging.
func (b *Block) String() string {
	var sb strings.Builder
	b.render(&sb, 0)
	return sb.String()
}

func (b *Block) render(sb *strings.Builder, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	switch b.Kind {
	case Leaf:
		fmt.Fprintf(sb, "leaf %s [%s] res{%s}\n", b.ID, b.ModuleKey, b.Resources)
	default:
		fmt.Fprintf(sb, "%s %s (%d children) res{%s}\n", b.Kind, b.ID, len(b.Children), b.Resources)
	}
	for _, c := range b.Children {
		c.render(sb, depth+1)
	}
}

// Accelerator pairs the control-path soft block with the data-path tree,
// the result of the decomposing step's first move (Fig. 3a): the control
// and data path are split at the top of the design.
type Accelerator struct {
	// Name identifies the accelerator design (e.g. "bw_tiles21").
	Name string `json:"name"`
	// Control holds the (undivided) control-path soft block.
	Control *Block `json:"control"`
	// Data is the root of the decomposed data-path tree.
	Data *Block `json:"data"`
}

// Validate checks both trees and that IDs do not collide across them.
func (a *Accelerator) Validate() error {
	if a.Control == nil || a.Data == nil {
		return errors.New("softblock: accelerator needs control and data blocks")
	}
	seen := map[string]bool{}
	if err := a.Control.validate(seen); err != nil {
		return fmt.Errorf("control: %w", err)
	}
	if err := a.Data.validate(seen); err != nil {
		return fmt.Errorf("data: %w", err)
	}
	return nil
}

// TotalResources sums control and data resources.
func (a *Accelerator) TotalResources() resource.Vector {
	return a.Control.Resources.Add(a.Data.Resources)
}

// MarshalJSON/Unmarshal round-trip through the standard encoder; provided
// as explicit helpers for the tool CLIs.
func (a *Accelerator) Encode() ([]byte, error) { return json.MarshalIndent(a, "", "  ") }

// Decode parses an accelerator from JSON.
func Decode(data []byte) (*Accelerator, error) {
	var a Accelerator
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, err
	}
	return &a, nil
}
