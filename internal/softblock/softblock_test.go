package softblock

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mlvfpga/internal/resource"
)

func leaf(id string, luts int64) *Block {
	return NewLeaf(id, "mod_"+id, "path."+id, resource.Vector{LUTs: luts}, 32, 32)
}

// leafOf builds interchangeable copies: same module key, distinct IDs.
func leafOf(id, key string, luts int64) *Block {
	return NewLeaf(id, key, "path."+id, resource.Vector{LUTs: luts}, 32, 32)
}

func samplePipeline() *Block {
	return NewPipeline("p0", []*Block{leaf("a", 10), leaf("b", 20), leaf("c", 30)}, []int{64, 16})
}

func sampleData() *Block {
	return NewDataParallel("d0", []*Block{
		leafOf("x0", "simd", 10), leafOf("x1", "simd", 10), leafOf("x2", "simd", 10), leafOf("x3", "simd", 10),
	})
}

func TestRollups(t *testing.T) {
	p := samplePipeline()
	if p.Resources.LUTs != 60 {
		t.Errorf("pipeline roll-up = %v", p.Resources)
	}
	if p.InBits != 32 || p.OutBits != 32 {
		t.Errorf("pipeline IO = %d/%d", p.InBits, p.OutBits)
	}
	d := sampleData()
	if d.Resources.LUTs != 40 {
		t.Errorf("data roll-up = %v", d.Resources)
	}
	if d.InBits != 128 || d.OutBits != 128 {
		t.Errorf("data IO = %d/%d, want aggregated 128/128", d.InBits, d.OutBits)
	}
}

func TestValidateGood(t *testing.T) {
	nested := NewPipeline("root", []*Block{sampleData(), samplePipeline()}, []int{128})
	if err := nested.Validate(); err != nil {
		t.Errorf("valid tree rejected: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	bad := leaf("l", 1)
	bad.Children = []*Block{leaf("c", 1)}
	if err := bad.Validate(); !errors.Is(err, ErrLeafWithChildren) {
		t.Errorf("leaf with children: %v", err)
	}

	single := NewPipeline("p", []*Block{leaf("a", 1)}, nil)
	if err := single.Validate(); !errors.Is(err, ErrTooFewChildren) {
		t.Errorf("single-child pipeline: %v", err)
	}

	badBits := NewPipeline("p", []*Block{leaf("a", 1), leaf("b", 1)}, []int{1, 2})
	if err := badBits.Validate(); !errors.Is(err, ErrStageBits) {
		t.Errorf("stage bits mismatch: %v", err)
	}

	dup := NewPipeline("p", []*Block{leaf("a", 1), leaf("a", 1)}, []int{8})
	if err := dup.Validate(); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("duplicate id: %v", err)
	}

	mixed := NewDataParallel("d", []*Block{leafOf("a", "m1", 1), leafOf("b", "m2", 1)})
	if err := mixed.Validate(); !errors.Is(err, ErrDataMismatch) {
		t.Errorf("non-interchangeable data children: %v", err)
	}

	noMod := &Block{ID: "x", Kind: Leaf}
	if err := noMod.Validate(); err == nil {
		t.Error("leaf without module must fail")
	}

	badKind := &Block{ID: "x", Kind: Kind(9)}
	if err := badKind.Validate(); err == nil {
		t.Error("invalid kind must fail")
	}
}

func TestSignatureInterchangeability(t *testing.T) {
	a := NewPipeline("p1", []*Block{leafOf("a", "m", 1), leafOf("b", "n", 1)}, []int{8})
	b := NewPipeline("p2", []*Block{leafOf("c", "m", 1), leafOf("d", "n", 1)}, []int{8})
	if a.Signature() != b.Signature() {
		t.Error("same structure must share signature")
	}
	c := NewPipeline("p3", []*Block{leafOf("c", "m", 1), leafOf("d", "n", 1)}, []int{16})
	if a.Signature() == c.Signature() {
		t.Error("different stage bandwidth must change signature")
	}
}

func TestLeavesAndDepth(t *testing.T) {
	nested := NewPipeline("root", []*Block{sampleData(), samplePipeline()}, []int{128})
	if n := nested.NumLeaves(); n != 7 {
		t.Errorf("NumLeaves = %d, want 7", n)
	}
	if d := nested.Depth(); d != 3 {
		t.Errorf("Depth = %d, want 3", d)
	}
	got := nested.Leaves()
	if got[0].ID != "x0" || got[6].ID != "c" {
		t.Errorf("leaf order wrong: %v ... %v", got[0].ID, got[6].ID)
	}
}

func TestWalkOrder(t *testing.T) {
	p := samplePipeline()
	var ids []string
	p.Walk(func(b *Block) { ids = append(ids, b.ID) })
	if strings.Join(ids, ",") != "p0,a,b,c" {
		t.Errorf("walk order = %v", ids)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := samplePipeline()
	cp := p.Clone()
	cp.Children[0].Resources = resource.Vector{LUTs: 999}
	cp.StageBits[0] = 1
	if p.Children[0].Resources.LUTs == 999 || p.StageBits[0] == 1 {
		t.Error("Clone must deep-copy")
	}
	if cp.Signature() == "" || p.NumLeaves() != cp.NumLeaves() {
		t.Error("clone shape differs")
	}
}

func TestAcceleratorValidateAndJSON(t *testing.T) {
	acc := &Accelerator{
		Name:    "bw",
		Control: leaf("ctrl", 5000),
		Data:    NewPipeline("dp", []*Block{sampleData(), samplePipeline()}, []int{128}),
	}
	if err := acc.Validate(); err != nil {
		t.Fatalf("valid accelerator rejected: %v", err)
	}
	if acc.TotalResources().LUTs != 5000+100 {
		t.Errorf("TotalResources = %v", acc.TotalResources())
	}
	data, err := acc.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped accelerator invalid: %v", err)
	}
	if back.Data.Signature() != acc.Data.Signature() {
		t.Error("JSON round trip changed structure")
	}
	if back.Data.Kind != Pipeline {
		t.Errorf("kind decoded as %v", back.Data.Kind)
	}
}

func TestAcceleratorValidateCrossTreeIDs(t *testing.T) {
	acc := &Accelerator{
		Name:    "bw",
		Control: leaf("same", 1),
		Data:    NewPipeline("p", []*Block{leaf("same", 1), leaf("other", 1)}, []int{8}),
	}
	if err := acc.Validate(); err == nil {
		t.Error("colliding IDs across control/data must fail")
	}
	if err := (&Accelerator{}).Validate(); err == nil {
		t.Error("nil trees must fail")
	}
}

func TestKindJSON(t *testing.T) {
	var k Kind
	if err := k.UnmarshalJSON([]byte(`"pipeline"`)); err != nil || k != Pipeline {
		t.Errorf("unmarshal pipeline: %v %v", k, err)
	}
	if err := k.UnmarshalJSON([]byte(`"bogus"`)); err == nil {
		t.Error("bogus kind must fail")
	}
	if err := k.UnmarshalJSON([]byte(`7`)); err == nil {
		t.Error("non-string kind must fail")
	}
}

// randomTree builds a random valid tree for property tests.
func randomTree(r *rand.Rand, depth int, idGen *int) *Block {
	mk := func() string {
		*idGen++
		return strings.Repeat("n", 1) + "_" + string(rune('a'+*idGen%26)) + "_" + itoa(*idGen)
	}
	if depth <= 0 || r.Intn(3) == 0 {
		return NewLeaf(mk(), "mod"+itoa(r.Intn(4)), "", resource.Vector{LUTs: int64(r.Intn(100) + 1)}, 8, 8)
	}
	n := 2 + r.Intn(3)
	if r.Intn(2) == 0 {
		kids := make([]*Block, n)
		bits := make([]int, n-1)
		for i := range kids {
			kids[i] = randomTree(r, depth-1, idGen)
		}
		for i := range bits {
			bits[i] = 8 * (1 + r.Intn(8))
		}
		return NewPipeline(mk(), kids, bits)
	}
	// Data-parallel children must be interchangeable: clone one child.
	proto := randomTree(r, depth-1, idGen)
	kids := make([]*Block, n)
	kids[0] = proto
	for i := 1; i < n; i++ {
		c := proto.Clone()
		var relabel func(b *Block)
		relabel = func(b *Block) {
			b.ID = mk()
			for _, ch := range b.Children {
				relabel(ch)
			}
		}
		relabel(c)
		kids[i] = c
	}
	return NewDataParallel(mk(), kids)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// Property: random trees validate, and clone preserves signature, leaves
// and resources.
func TestQuickTreeInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		gen := 0
		tree := randomTree(r, 3, &gen)
		if err := tree.Validate(); err != nil {
			t.Logf("invalid random tree: %v\n%s", err, tree)
			return false
		}
		cp := tree.Clone()
		return cp.Signature() == tree.Signature() &&
			cp.NumLeaves() == tree.NumLeaves() &&
			cp.Resources == tree.Resources
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: resources of a node equal the sum over its leaves.
func TestQuickResourceRollup(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		gen := 0
		tree := randomTree(r, 3, &gen)
		var sum resource.Vector
		for _, l := range tree.Leaves() {
			sum = sum.Add(l.Resources)
		}
		return sum == tree.Resources
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDOT(t *testing.T) {
	tree := NewPipeline("root", []*Block{sampleData(), samplePipeline()}, []int{128})
	dot := tree.DOT("accel")
	for _, want := range []string{
		"digraph \"accel\"",
		"\"root\" -> \"d0\"",
		"\"root\" -> \"p0\" [label=\"128b\"]",
		"data x4",
		"shape=box",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
	// Every node appears exactly once as a declaration (line-anchored so
	// edge statements do not count).
	tree.Walk(func(b *Block) {
		decl := "\n  \"" + b.ID + "\" ["
		if strings.Count(dot, decl) != 1 {
			t.Errorf("node %s declared %d times", b.ID, strings.Count(dot, decl))
		}
	})
}
