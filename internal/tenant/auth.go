package tenant

import (
	"bytes"
	"context"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"mlvfpga/internal/metrics"
)

// Signed-request headers. The signature is HMAC-SHA256 over the canonical
// string
//
//	METHOD \n PATH \n hex(SHA256(body)) \n TIMESTAMP \n NONCE
//
// with the tenant's shared key, hex-encoded. TIMESTAMP is decimal unix
// seconds and must fall within the guard's skew window; NONCE is an
// arbitrary client-unique string replayed requests are rejected by.
const (
	HeaderTenant    = "X-MLV-Tenant"
	HeaderTimestamp = "X-MLV-Timestamp"
	HeaderNonce     = "X-MLV-Nonce"
	HeaderSignature = "X-MLV-Signature"
)

// Sign computes the request signature a client must send (and the guard
// recomputes): hex HMAC-SHA256 over the canonical string.
func Sign(key []byte, method, path string, body []byte, unixTS int64, nonce string) string {
	sum := sha256.Sum256(body)
	mac := hmac.New(sha256.New, key)
	fmt.Fprintf(mac, "%s\n%s\n%s\n%d\n%s", method, path, hex.EncodeToString(sum[:]), unixTS, nonce)
	return hex.EncodeToString(mac.Sum(nil))
}

// SignRequest stamps the four auth headers onto an outgoing request whose
// body bytes are supplied explicitly (the caller keeps r.Body readable).
func SignRequest(r *http.Request, id string, key []byte, body []byte, now time.Time, nonce string) {
	ts := now.Unix()
	r.Header.Set(HeaderTenant, id)
	r.Header.Set(HeaderTimestamp, strconv.FormatInt(ts, 10))
	r.Header.Set(HeaderNonce, nonce)
	r.Header.Set(HeaderSignature, Sign(key, r.Method, r.URL.Path, body, ts, nonce))
}

// ctxKey is the context key carrying the authenticated tenant.
type ctxKey struct{}

// WithTenant returns ctx carrying t as the authenticated caller.
func WithTenant(ctx context.Context, t Tenant) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the authenticated tenant, if any. Handlers behind a
// guard always see one on mutating requests; in insecure (anonymous) mode
// ok is false.
func FromContext(ctx context.Context) (Tenant, bool) {
	t, ok := ctx.Value(ctxKey{}).(Tenant)
	return t, ok
}

// GuardOptions tunes the authentication middleware.
type GuardOptions struct {
	// MaxSkew bounds |server time - request timestamp| (default 2m).
	MaxSkew time.Duration
	// MaxNonces caps one tenant's live replay-window entries (default
	// 64k); a nonce stays rejected for 2×MaxSkew, the widest interval a
	// timestamp inside the skew bound could be replayed over.
	MaxNonces int
	// AdminPrefixes are path prefixes whose mutating operations require
	// an admin tenant (default: /cluster/).
	AdminPrefixes []string
	// Now overrides the clock (tests). Nil means time.Now.
	Now func() time.Time
}

// Guard authenticates signed requests against a Registry and injects the
// tenant into the request context. Read-only requests (GET, HEAD) pass
// through unauthenticated — the mutating surface (/deploy, /release,
// /infer, /cluster/* ops) is what the signature protects.
type Guard struct {
	reg  *Registry
	opts GuardOptions

	mu     sync.Mutex
	nonces map[string]map[string]time.Time // tenant -> nonce -> expiry
}

// NewGuard builds the middleware over the registry.
func NewGuard(reg *Registry, opts GuardOptions) *Guard {
	if opts.MaxSkew <= 0 {
		opts.MaxSkew = 2 * time.Minute
	}
	if opts.MaxNonces <= 0 {
		opts.MaxNonces = 1 << 16
	}
	if len(opts.AdminPrefixes) == 0 {
		opts.AdminPrefixes = []string{"/cluster/"}
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Guard{reg: reg, opts: opts, nonces: map[string]map[string]time.Time{}}
}

// reject answers an auth failure with a JSON error body and counts it
// against the claimed tenant id ("unknown" when the request named none).
func (g *Guard) reject(w http.ResponseWriter, code int, id, reason string) {
	if id == "" {
		id = "unknown"
	}
	metrics.TenantAuthFailures.Add(id, 1)
	metrics.TenantRejections.Add(id, 1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": reason})
}

// Wrap returns next behind signed-request authentication. Responses:
//
//	401 — missing headers, unknown tenant, timestamp outside the skew
//	      window, replayed nonce, or signature mismatch
//	403 — authenticated non-admin tenant on an admin-only operation
func (g *Guard) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet || r.Method == http.MethodHead {
			next.ServeHTTP(w, r)
			return
		}
		id := r.Header.Get(HeaderTenant)
		tsRaw := r.Header.Get(HeaderTimestamp)
		nonce := r.Header.Get(HeaderNonce)
		sig := r.Header.Get(HeaderSignature)
		if id == "" || tsRaw == "" || nonce == "" || sig == "" {
			g.reject(w, http.StatusUnauthorized, id, "missing signed-request headers")
			return
		}
		t, ok := g.reg.Lookup(id)
		if !ok {
			g.reject(w, http.StatusUnauthorized, id, "unknown tenant")
			return
		}
		ts, err := strconv.ParseInt(tsRaw, 10, 64)
		if err != nil {
			g.reject(w, http.StatusUnauthorized, id, "malformed timestamp")
			return
		}
		now := g.opts.Now()
		if skew := now.Sub(time.Unix(ts, 0)); skew > g.opts.MaxSkew || skew < -g.opts.MaxSkew {
			g.reject(w, http.StatusUnauthorized, id, "timestamp outside allowed clock skew")
			return
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			g.reject(w, http.StatusUnauthorized, id, "unreadable body")
			return
		}
		r.Body = io.NopCloser(bytes.NewReader(body))
		want := Sign([]byte(t.Key), r.Method, r.URL.Path, body, ts, nonce)
		// Constant-time compare: the hex strings have fixed length, so the
		// comparison leaks nothing about where a forgery diverges.
		if !hmac.Equal([]byte(want), []byte(sig)) {
			g.reject(w, http.StatusUnauthorized, id, "bad signature")
			return
		}
		if !g.admitNonce(id, nonce, now) {
			g.reject(w, http.StatusUnauthorized, id, "replayed nonce")
			return
		}
		if !t.Admin {
			for _, p := range g.opts.AdminPrefixes {
				if len(r.URL.Path) >= len(p) && r.URL.Path[:len(p)] == p {
					g.reject(w, http.StatusForbidden, id, "admin tenant required")
					return
				}
			}
		}
		next.ServeHTTP(w, r.WithContext(WithTenant(r.Context(), t)))
	})
}

// admitNonce records the nonce inside its replay window, rejecting
// repeats. Expired entries are pruned opportunistically; a tenant's
// window is additionally capped at MaxNonces live entries, oldest-expiry
// pruned first (a full window rejects rather than forgets).
func (g *Guard) admitNonce(id, nonce string, now time.Time) bool {
	window := 2 * g.opts.MaxSkew
	g.mu.Lock()
	defer g.mu.Unlock()
	seen := g.nonces[id]
	if seen == nil {
		seen = map[string]time.Time{}
		g.nonces[id] = seen
	}
	for n, exp := range seen {
		if now.After(exp) {
			delete(seen, n)
		}
	}
	if exp, dup := seen[nonce]; dup && !now.After(exp) {
		return false
	}
	if len(seen) >= g.opts.MaxNonces {
		return false
	}
	seen[nonce] = now.Add(window)
	return true
}
