package tenant

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"mlvfpga/internal/metrics"
)

func testRegistry(t *testing.T) *Registry {
	t.Helper()
	reg, err := NewRegistry(
		Tenant{ID: "alice", Key: "alice-secret", Class: Latency, Admin: true},
		Tenant{ID: "bob", Key: "bob-secret", Class: Batch},
	)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// echoTenant answers 200 with the authenticated tenant id (or "anon").
var echoTenant = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
	id := "anon"
	if t, ok := FromContext(r.Context()); ok {
		id = t.ID
	}
	_, _ = w.Write([]byte(id))
})

// signedReq builds a correctly signed POST for the given tenant.
func signedReq(id, key, path string, body []byte, now time.Time, nonce string) *http.Request {
	r := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	SignRequest(r, id, []byte(key), body, now, nonce)
	return r
}

func authFailures(id string) int64 {
	return metrics.TenantCounters()["mlv_tenant_auth_failures"][id]
}

func TestGuardAcceptsSignedRequest(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	g := NewGuard(testRegistry(t), GuardOptions{Now: func() time.Time { return now }})
	h := g.Wrap(echoTenant)

	w := httptest.NewRecorder()
	h.ServeHTTP(w, signedReq("bob", "bob-secret", "/infer", []byte(`{"id":1}`), now, "n1"))
	if w.Code != http.StatusOK || w.Body.String() != "bob" {
		t.Fatalf("signed request: code %d body %q", w.Code, w.Body.String())
	}

	// GET passes through unauthenticated.
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/status", nil))
	if w.Code != http.StatusOK || w.Body.String() != "anon" {
		t.Fatalf("GET passthrough: code %d body %q", w.Code, w.Body.String())
	}
}

func TestGuardAdmin(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	g := NewGuard(testRegistry(t), GuardOptions{Now: func() time.Time { return now }})
	h := g.Wrap(echoTenant)

	// Non-admin on an admin prefix: authenticated but forbidden.
	before := authFailures("bob")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, signedReq("bob", "bob-secret", "/cluster/kill", []byte(`{"id":0}`), now, "n-admin-1"))
	if w.Code != http.StatusForbidden {
		t.Fatalf("non-admin /cluster/kill: code %d, want 403", w.Code)
	}
	if got := authFailures("bob"); got != before+1 {
		t.Fatalf("auth failure counter delta = %d, want 1", got-before)
	}

	// Admin passes.
	w = httptest.NewRecorder()
	h.ServeHTTP(w, signedReq("alice", "alice-secret", "/cluster/kill", []byte(`{"id":0}`), now, "n-admin-2"))
	if w.Code != http.StatusOK {
		t.Fatalf("admin /cluster/kill: code %d, want 200", w.Code)
	}
}

func TestGuardRejections(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	g := NewGuard(testRegistry(t), GuardOptions{Now: func() time.Time { return now }})
	h := g.Wrap(echoTenant)
	body := []byte(`{"id":1}`)

	cases := []struct {
		name    string
		build   func() *http.Request
		code    int
		counted string // tenant id the failure is attributed to
	}{
		{
			name: "missing headers",
			build: func() *http.Request {
				return httptest.NewRequest(http.MethodPost, "/deploy", bytes.NewReader(body))
			},
			code:    http.StatusUnauthorized,
			counted: "unknown",
		},
		{
			name: "unknown tenant",
			build: func() *http.Request {
				return signedReq("mallory", "whatever", "/deploy", body, now, "n1")
			},
			code:    http.StatusUnauthorized,
			counted: "mallory",
		},
		{
			name: "expired timestamp",
			build: func() *http.Request {
				stale := now.Add(-3 * time.Minute)
				return signedReq("bob", "bob-secret", "/deploy", body, stale, "n2")
			},
			code:    http.StatusUnauthorized,
			counted: "bob",
		},
		{
			name: "future timestamp",
			build: func() *http.Request {
				ahead := now.Add(3 * time.Minute)
				return signedReq("bob", "bob-secret", "/deploy", body, ahead, "n3")
			},
			code:    http.StatusUnauthorized,
			counted: "bob",
		},
		{
			name: "malformed timestamp",
			build: func() *http.Request {
				r := signedReq("bob", "bob-secret", "/deploy", body, now, "n4")
				r.Header.Set(HeaderTimestamp, "yesterday")
				return r
			},
			code:    http.StatusUnauthorized,
			counted: "bob",
		},
		{
			name: "tampered body",
			build: func() *http.Request {
				r := signedReq("bob", "bob-secret", "/deploy", body, now, "n5")
				r.Body = httptest.NewRequest(http.MethodPost, "/deploy",
					bytes.NewReader([]byte(`{"id":999}`))).Body
				return r
			},
			code:    http.StatusUnauthorized,
			counted: "bob",
		},
		{
			name: "wrong key",
			build: func() *http.Request {
				return signedReq("bob", "not-bobs-key", "/deploy", body, now, "n6")
			},
			code:    http.StatusUnauthorized,
			counted: "bob",
		},
		{
			name: "signature for another path",
			build: func() *http.Request {
				r := signedReq("bob", "bob-secret", "/deploy", body, now, "n7")
				r2 := httptest.NewRequest(http.MethodPost, "/release", bytes.NewReader(body))
				r2.Header = r.Header
				return r2
			},
			code:    http.StatusUnauthorized,
			counted: "bob",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := authFailures(tc.counted)
			w := httptest.NewRecorder()
			h.ServeHTTP(w, tc.build())
			if w.Code != tc.code {
				t.Fatalf("code %d, want %d (body %s)", w.Code, tc.code, w.Body.String())
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Fatalf("rejection body %q is not a JSON error", w.Body.String())
			}
			if got := authFailures(tc.counted); got != before+1 {
				t.Fatalf("auth failures for %s: delta %d, want 1", tc.counted, got-before)
			}
		})
	}
}

func TestGuardReplayedNonce(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	g := NewGuard(testRegistry(t), GuardOptions{Now: func() time.Time { return now }})
	h := g.Wrap(echoTenant)
	body := []byte(`{"id":1}`)

	w := httptest.NewRecorder()
	h.ServeHTTP(w, signedReq("bob", "bob-secret", "/infer", body, now, "replay-me"))
	if w.Code != http.StatusOK {
		t.Fatalf("first use: code %d", w.Code)
	}
	w = httptest.NewRecorder()
	h.ServeHTTP(w, signedReq("bob", "bob-secret", "/infer", body, now, "replay-me"))
	if w.Code != http.StatusUnauthorized {
		t.Fatalf("replay: code %d, want 401", w.Code)
	}

	// Past the replay window (2×MaxSkew) the nonce may be reused — the
	// timestamp check is what rejects the stale original by then.
	now = now.Add(5 * time.Minute)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, signedReq("bob", "bob-secret", "/infer", body, now, "replay-me"))
	if w.Code != http.StatusOK {
		t.Fatalf("post-window reuse: code %d, want 200 (body %s)", w.Code, w.Body.String())
	}
}

func TestGuardNonceCap(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	g := NewGuard(testRegistry(t), GuardOptions{MaxNonces: 2, Now: func() time.Time { return now }})
	h := g.Wrap(echoTenant)
	body := []byte(`{}`)
	for i, want := range []int{200, 200, 401} {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, signedReq("bob", "bob-secret", "/infer", body, now, "cap-"+strconv.Itoa(i)))
		if w.Code != want {
			t.Fatalf("request %d: code %d, want %d", i, w.Code, want)
		}
	}
}

func TestSignDeterministic(t *testing.T) {
	a := Sign([]byte("k"), "POST", "/deploy", []byte("b"), 42, "n")
	b := Sign([]byte("k"), "POST", "/deploy", []byte("b"), 42, "n")
	if a != b {
		t.Fatal("Sign is not deterministic")
	}
	if a == Sign([]byte("k2"), "POST", "/deploy", []byte("b"), 42, "n") {
		t.Fatal("key does not affect signature")
	}
	if a == Sign([]byte("k"), "POST", "/deploy", []byte("b"), 43, "n") {
		t.Fatal("timestamp does not affect signature")
	}
}
