// Package tenant gives the serving stack an identity and QoS model: who
// is calling, what they may hold, and how their traffic shares the
// hardware. A Registry maps tenant ids to HMAC keys, priority classes,
// fair-share weights and resource quotas; the Guard (auth.go)
// authenticates signed HTTP requests against it; the rms admission
// service and data plane enforce the quotas and weights it hands out.
//
// The model follows the multi-tenant cloud-FPGA literature ("Architecture
// Support for FPGA Multi-tenancy in the Cloud", the multi-tenant security
// survey): tenants are mutually untrusted, the shared fabric is
// partitioned by quota, and a batch-class tenant must not be able to
// starve a latency-class tenant's tail.
package tenant

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
)

// Class is a tenant's QoS class: it sets the default fair-share weight of
// the tenant's requests inside every lease's micro-batch assembly.
type Class int

const (
	// Latency tenants are interactive: their requests carry a high
	// fair-share weight so a saturating batch tenant cannot push their
	// p99 out.
	Latency Class = iota
	// Batch tenants are throughput-oriented: their requests fill whatever
	// micro-batch slots the latency traffic leaves free.
	Batch
)

// Class fair-share default weights (DRR quanta per round).
const (
	latencyWeight = 8
	batchWeight   = 1
)

func (c Class) String() string {
	if c == Batch {
		return "batch"
	}
	return "latency"
}

// MarshalJSON renders the class as its name.
func (c Class) MarshalJSON() ([]byte, error) { return json.Marshal(c.String()) }

// UnmarshalJSON accepts "latency" or "batch".
func (c *Class) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	switch s {
	case "latency":
		*c = Latency
	case "batch":
		*c = Batch
	default:
		return fmt.Errorf("tenant: unknown class %q (want \"latency\" or \"batch\")", s)
	}
	return nil
}

// Quotas bounds a tenant's resource grants. Zero means unlimited.
type Quotas struct {
	// MaxLeases caps concurrently admitted deployments.
	MaxLeases int `json:"max_leases,omitempty"`
	// MaxDevices caps the physical devices the tenant's placements touch,
	// summed over its leases.
	MaxDevices int `json:"max_devices,omitempty"`
	// MaxBlocks caps the virtual blocks the tenant holds, summed over its
	// leases.
	MaxBlocks int `json:"max_blocks,omitempty"`
	// MaxInFlight caps the tenant's admitted-and-unanswered inference
	// requests across all leases; a breach is answered 429 + Retry-After.
	MaxInFlight int `json:"max_in_flight,omitempty"`
}

// Tenant is one registered identity.
type Tenant struct {
	// ID names the tenant (the X-MLV-Tenant header value).
	ID string `json:"id"`
	// Key is the shared HMAC-SHA256 secret for request signing.
	Key string `json:"key"`
	// Class is the QoS class (default Latency).
	Class Class `json:"class"`
	// Admin grants the /cluster/* mutating operations (kill, drain,
	// rebalance, heartbeat).
	Admin bool `json:"admin,omitempty"`
	// Weight overrides the class's default fair-share weight (0 = class
	// default: 8 for latency, 1 for batch).
	Weight int `json:"weight,omitempty"`
	// Quotas bounds the tenant's grants (zero fields = unlimited).
	Quotas Quotas `json:"quotas"`
}

// EffectiveWeight is the DRR quantum the data plane uses for the tenant.
func (t Tenant) EffectiveWeight() int {
	if t.Weight > 0 {
		return t.Weight
	}
	if t.Class == Batch {
		return batchWeight
	}
	return latencyWeight
}

// Registry is the tenant table, safe for concurrent use.
type Registry struct {
	mu   sync.RWMutex
	byID map[string]Tenant
}

// NewRegistry builds a registry over the given tenants.
func NewRegistry(tenants ...Tenant) (*Registry, error) {
	r := &Registry{byID: map[string]Tenant{}}
	for _, t := range tenants {
		if err := r.Add(t); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Add registers a tenant. Ids must be unique and keys non-empty.
func (r *Registry) Add(t Tenant) error {
	if t.ID == "" {
		return fmt.Errorf("tenant: empty id")
	}
	if t.Key == "" {
		return fmt.Errorf("tenant: %s has an empty key", t.ID)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byID[t.ID]; dup {
		return fmt.Errorf("tenant: duplicate id %q", t.ID)
	}
	r.byID[t.ID] = t
	return nil
}

// Lookup returns the tenant by id.
func (r *Registry) Lookup(id string) (Tenant, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.byID[id]
	return t, ok
}

// List returns every tenant sorted by id.
func (r *Registry) List() []Tenant {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Tenant, 0, len(r.byID))
	for _, t := range r.byID {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// LoadFile reads a registry from a JSON file: either a bare array of
// tenants or {"tenants": [...]}.
func LoadFile(path string) (*Registry, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenant: %w", err)
	}
	var wrapped struct {
		Tenants []Tenant `json:"tenants"`
	}
	if err := json.Unmarshal(b, &wrapped); err != nil || len(wrapped.Tenants) == 0 {
		var bare []Tenant
		if berr := json.Unmarshal(b, &bare); berr != nil {
			if err == nil {
				err = berr
			}
			return nil, fmt.Errorf("tenant: parsing %s: %w", path, err)
		}
		wrapped.Tenants = bare
	}
	if len(wrapped.Tenants) == 0 {
		return nil, fmt.Errorf("tenant: %s defines no tenants", path)
	}
	return NewRegistry(wrapped.Tenants...)
}
