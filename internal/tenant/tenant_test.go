package tenant

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestClassJSONRoundTrip(t *testing.T) {
	for _, c := range []Class{Latency, Batch} {
		b, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("marshal %v: %v", c, err)
		}
		var back Class
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back != c {
			t.Fatalf("round trip %v -> %s -> %v", c, b, back)
		}
	}
	var c Class
	if err := json.Unmarshal([]byte(`"interactive"`), &c); err == nil {
		t.Fatal("unknown class name accepted")
	}
}

func TestEffectiveWeight(t *testing.T) {
	cases := []struct {
		t    Tenant
		want int
	}{
		{Tenant{Class: Latency}, 8},
		{Tenant{Class: Batch}, 1},
		{Tenant{Class: Batch, Weight: 3}, 3},
		{Tenant{Class: Latency, Weight: 2}, 2},
	}
	for _, c := range cases {
		if got := c.t.EffectiveWeight(); got != c.want {
			t.Errorf("EffectiveWeight(%+v) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestRegistryValidation(t *testing.T) {
	if _, err := NewRegistry(Tenant{ID: "", Key: "k"}); err == nil {
		t.Fatal("empty id accepted")
	}
	if _, err := NewRegistry(Tenant{ID: "a", Key: ""}); err == nil {
		t.Fatal("empty key accepted")
	}
	if _, err := NewRegistry(Tenant{ID: "a", Key: "k"}, Tenant{ID: "a", Key: "k2"}); err == nil {
		t.Fatal("duplicate id accepted")
	}
	reg, err := NewRegistry(Tenant{ID: "b", Key: "k"}, Tenant{ID: "a", Key: "k"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Lookup("a"); !ok {
		t.Fatal("lookup a failed")
	}
	if _, ok := reg.Lookup("zzz"); ok {
		t.Fatal("lookup of unknown id succeeded")
	}
	got := reg.List()
	if len(got) != 2 || got[0].ID != "a" || got[1].ID != "b" {
		t.Fatalf("List() = %+v, want sorted [a b]", got)
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	bare := filepath.Join(dir, "bare.json")
	if err := os.WriteFile(bare, []byte(`[
		{"id":"alice","key":"s1","class":"latency","admin":true,
		 "quotas":{"max_leases":2,"max_in_flight":8}},
		{"id":"bob","key":"s2","class":"batch"}
	]`), 0o644); err != nil {
		t.Fatal(err)
	}
	reg, err := LoadFile(bare)
	if err != nil {
		t.Fatal(err)
	}
	alice, ok := reg.Lookup("alice")
	if !ok || !alice.Admin || alice.Quotas.MaxLeases != 2 || alice.Quotas.MaxInFlight != 8 {
		t.Fatalf("alice = %+v", alice)
	}
	if bob, _ := reg.Lookup("bob"); bob.Class != Batch {
		t.Fatalf("bob class = %v, want batch", bob.Class)
	}

	wrapped := filepath.Join(dir, "wrapped.json")
	if err := os.WriteFile(wrapped, []byte(`{"tenants":[{"id":"c","key":"s"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(wrapped); err != nil {
		t.Fatalf("wrapped form: %v", err)
	}

	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`[]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(empty); err == nil {
		t.Fatal("empty tenant file accepted")
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
