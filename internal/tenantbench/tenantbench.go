// Package tenantbench measures multi-tenant fairness in the micro-batching
// data plane for cmd/mlv-bench-tenant, which records the numbers into
// BENCH_tenant.json. The scenario is the QoS contract's worst case: one
// batch-class tenant keeps a standing backlog against a shared lease while
// one latency-class tenant sends a steady trickle of single requests. The
// deficit-round-robin fair queue weights the latency class 8:1, so a
// latency probe should never wait behind more than the batch already
// executing — its p99 under contention must stay within a small factor of
// its solo-run p99.
package tenantbench

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"mlvfpga/internal/kernels"
	"mlvfpga/internal/metrics"
	"mlvfpga/internal/perf"
	"mlvfpga/internal/resource"
	"mlvfpga/internal/rms"
	"mlvfpga/internal/scaleout"
	"mlvfpga/internal/tenant"
)

// Options sizes one fairness run.
type Options struct {
	// Probes is the number of timed latency-tenant requests per phase.
	Probes int
	// Warmup requests run (and are discarded) before timing starts.
	Warmup int
	// Flood is the batch tenant's closed-loop worker count in the mixed
	// phase; together with the workers' immediate resubmission it keeps a
	// standing backlog in the fair queue.
	Flood int
	// MaxInFlight caps the batch tenant, bounding its backlog so the
	// run's latency tail reflects scheduling policy, not queue length.
	MaxInFlight int
	// Spec is the layer the shared lease serves.
	Spec kernels.LayerSpec
	// Infer tunes the data plane under test.
	Infer rms.InferOptions
}

// DefaultOptions is the recorded configuration: a small LSTM lease, one
// machine, micro-batches of 4, and a 4-worker batch flood capped at 8
// in flight.
func DefaultOptions() Options {
	return Options{
		Probes:      300,
		Warmup:      20,
		Flood:       4,
		MaxInFlight: 8,
		Spec:        kernels.LayerSpec{Kind: kernels.LSTM, Hidden: 64, TimeSteps: 2},
		Infer: rms.InferOptions{
			MaxBatch:   4,
			FlushDelay: 500 * time.Microsecond,
			Machines:   1,
			Tiles:      1,
			Seed:       11,
		},
	}
}

// Phase is one measured phase's latency distribution for the latency
// tenant, plus the batch tenant's concurrent progress.
type Phase struct {
	Probes         int     `json:"probes"`
	P50Us          float64 `json:"p50_us"`
	P90Us          float64 `json:"p90_us"`
	P99Us          float64 `json:"p99_us"`
	MaxUs          float64 `json:"max_us"`
	BatchCompleted int     `json:"batch_completed"`
	BatchPerSec    float64 `json:"batch_per_sec,omitempty"`
}

// Result is one fairness run.
type Result struct {
	Solo  Phase `json:"solo"`
	Mixed Phase `json:"mixed"`
	// P99Ratio is Mixed.P99Us / Solo.P99Us — the number the 2x fairness
	// bound is asserted against.
	P99Ratio float64 `json:"p99_ratio"`
	// BatchOccupancy is the batch tenant's mean riders per batch during
	// the mixed phase (how full its share of the micro-batches ran).
	BatchOccupancy float64 `json:"batch_occupancy"`
	// BatchRejections counts ErrTenantBusy sheds the flood absorbed.
	BatchRejections int64 `json:"batch_rejections"`
}

// Run executes the solo phase (latency tenant alone) then the mixed phase
// (batch flood + latency probes) against one shared lease and returns the
// distributions. The caller asserts the fairness bound.
func Run(o Options) (*Result, error) {
	db := rms.NewDatabase(rms.Flexible, perf.DefaultParams(), scaleout.DefaultOptions())
	svc, err := rms.NewService(resource.PaperCluster(), db)
	if err != nil {
		return nil, err
	}
	reg, err := tenant.NewRegistry(
		tenant.Tenant{ID: "lat", Key: "lat-key", Class: tenant.Latency},
		tenant.Tenant{ID: "bat", Key: "bat-key", Class: tenant.Batch,
			Quotas: tenant.Quotas{MaxInFlight: o.MaxInFlight}},
	)
	if err != nil {
		return nil, err
	}
	svc.SetTenants(reg)
	dp := rms.NewDataPlane(svc, o.Infer)
	defer dp.Close()
	dp.SetTenants(reg)

	lease, err := svc.DeployWith(o.Spec, rms.PlaceOptions{Tenant: "lat"})
	if err != nil {
		return nil, fmt.Errorf("tenantbench: deploy: %w", err)
	}

	// A small pool of pre-built inputs; both tenants share the lease, the
	// batch flood cycles the pool.
	inputs := make([][][]float64, 8)
	for i := range inputs {
		inputs[i] = randInputs(o.Spec, int64(i)+1)
	}

	res := &Result{}
	base := metrics.TenantCounters()
	solo, err := measure(dp, lease.ID, o, inputs, false)
	if err != nil {
		return nil, err
	}
	res.Solo = solo
	mixed, err := measure(dp, lease.ID, o, inputs, true)
	if err != nil {
		return nil, err
	}
	res.Mixed = mixed
	if solo.P99Us > 0 {
		res.P99Ratio = mixed.P99Us / solo.P99Us
	}
	cur := metrics.TenantCounters()
	tdelta := func(name string) int64 { return cur[name]["bat"] - base[name]["bat"] }
	if batches := tdelta("mlv_tenant_batches"); batches > 0 {
		res.BatchOccupancy = float64(tdelta("mlv_tenant_batch_riders")) / float64(batches)
	}
	res.BatchRejections = tdelta("mlv_tenant_rejections")
	return res, nil
}

// measure times Warmup+Probes sequential latency-tenant requests; with
// flood set, Flood batch-tenant workers resubmit continuously for the
// whole phase (a shed worker backs off briefly instead of spinning).
func measure(dp *rms.DataPlane, leaseID int, o Options, inputs [][][]float64, flood bool) (Phase, error) {
	var (
		stop      = make(chan struct{})
		wg        sync.WaitGroup
		mu        sync.Mutex
		completed int
	)
	if flood {
		for w := 0; w < o.Flood; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := w; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := dp.InferAs("bat", leaseID, inputs[i%len(inputs)]); err != nil {
						time.Sleep(200 * time.Microsecond)
						continue
					}
					mu.Lock()
					completed++
					mu.Unlock()
				}
			}()
		}
		// The spawned workers don't run until this goroutine yields, and on
		// a single-CPU host a short probe loop can otherwise finish inside
		// one scheduler timeslice with the flood never scheduled at all.
		// Wait for the flood's first completion so every timed probe really
		// contends with batch traffic.
		deadline := time.Now().Add(10 * time.Second)
		for {
			mu.Lock()
			n := completed
			mu.Unlock()
			if n > 0 {
				break
			}
			if time.Now().After(deadline) {
				close(stop)
				wg.Wait()
				return Phase{}, fmt.Errorf("tenantbench: batch flood never started")
			}
			runtime.Gosched()
		}
	}

	lat := make([]time.Duration, 0, o.Probes)
	started := time.Now()
	for i := 0; i < o.Warmup+o.Probes; i++ {
		t0 := time.Now()
		if _, err := dp.InferAs("lat", leaseID, inputs[i%len(inputs)]); err != nil {
			close(stop)
			wg.Wait()
			return Phase{}, fmt.Errorf("tenantbench: latency probe %d: %w", i, err)
		}
		if i >= o.Warmup {
			lat = append(lat, time.Since(t0))
		}
	}
	elapsed := time.Since(started)
	close(stop)
	wg.Wait()

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(lat)-1))
		return float64(lat[idx]) / float64(time.Microsecond)
	}
	ph := Phase{
		Probes:         len(lat),
		P50Us:          pct(0.50),
		P90Us:          pct(0.90),
		P99Us:          pct(0.99),
		MaxUs:          pct(1.0),
		BatchCompleted: completed,
	}
	if flood && elapsed > 0 {
		ph.BatchPerSec = float64(completed) / elapsed.Seconds()
	}
	return ph, nil
}

// randInputs derives a deterministic input tensor for the layer shape.
func randInputs(spec kernels.LayerSpec, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	in := make([][]float64, spec.TimeSteps)
	for t := range in {
		v := make([]float64, spec.Hidden)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		in[t] = v
	}
	return in
}
