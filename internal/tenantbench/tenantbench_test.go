package tenantbench

import "testing"

// TestRunSmoke runs a miniature fairness measurement end to end: both
// phases complete, distributions are populated and ordered, and the batch
// flood made progress during the mixed phase. The 2x fairness bound is
// asserted by cmd/mlv-bench-tenant when recording BENCH_tenant.json, not
// here — wall-clock ratios on a loaded CI box are not a unit-test fact.
func TestRunSmoke(t *testing.T) {
	o := DefaultOptions()
	o.Probes = 30
	o.Warmup = 5
	o.Flood = 2
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	for name, ph := range map[string]Phase{"solo": res.Solo, "mixed": res.Mixed} {
		if ph.Probes != o.Probes {
			t.Errorf("%s probes = %d, want %d", name, ph.Probes, o.Probes)
		}
		if ph.P50Us <= 0 || ph.P99Us < ph.P50Us || ph.MaxUs < ph.P99Us {
			t.Errorf("%s distribution out of order: p50=%.0f p99=%.0f max=%.0f",
				name, ph.P50Us, ph.P99Us, ph.MaxUs)
		}
	}
	if res.Solo.BatchCompleted != 0 {
		t.Errorf("solo phase recorded %d batch completions, want 0", res.Solo.BatchCompleted)
	}
	if res.Mixed.BatchCompleted == 0 {
		t.Error("batch flood made no progress during the mixed phase")
	}
	if res.P99Ratio <= 0 {
		t.Errorf("p99 ratio = %v", res.P99Ratio)
	}
	if res.BatchOccupancy <= 0 {
		t.Errorf("batch occupancy = %v", res.BatchOccupancy)
	}
}
