package wdsl

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ValueKind discriminates the literal forms an attribute value can take.
type ValueKind int

// Value kinds.
const (
	IntVal ValueKind = iota
	FloatVal
	DurationVal // 500ms, 1h30m — Go duration syntax
	PercentVal  // 12.5% — stored as the stated number, not the fraction
	RateVal     // 40/s — events per second
	IdentVal    // bare word: latency, poisson, ...
	StringVal   // quoted
)

// Value is one attribute value with its source position.
type Value struct {
	Pos   Pos
	Kind  ValueKind
	Int   int64         // IntVal
	Float float64       // FloatVal, PercentVal, RateVal
	Dur   time.Duration // DurationVal
	Str   string        // IdentVal, StringVal
}

func (v Value) String() string {
	switch v.Kind {
	case IntVal:
		return strconv.FormatInt(v.Int, 10)
	case FloatVal:
		return formatFloat(v.Float)
	case DurationVal:
		return v.Dur.String()
	case PercentVal:
		return formatFloat(v.Float) + "%"
	case RateVal:
		return formatFloat(v.Float) + "/s"
	case IdentVal:
		return v.Str
	case StringVal:
		return strconv.Quote(v.Str)
	}
	return "<invalid>"
}

func formatFloat(f float64) string {
	// 'f' (never scientific): the grammar has no exponent form. An
	// integer-valued float prints like an int, which re-parses as IntVal;
	// keep a trailing .0 so the kind survives the print→parse round trip.
	s := strconv.FormatFloat(f, 'f', -1, 64)
	if !strings.Contains(s, ".") {
		s += ".0"
	}
	return s
}

// equalValue compares semantic content (position excluded).
func equalValue(a, b Value) bool {
	if a.Kind != b.Kind {
		return false
	}
	return a.Int == b.Int && a.Float == b.Float && a.Dur == b.Dur && a.Str == b.Str
}

// Attr is one `name = value` attribute.
type Attr struct {
	Pos   Pos
	Name  string
	Value Value
}

// Layer is one `layer <kind> k=v ...` line inside a model.
type Layer struct {
	Pos   Pos
	Kind  string // lstm | gru | attention | mlp
	Attrs []Attr
}

// Model is a named graph of layers.
type Model struct {
	Pos    Pos
	Name   string
	Layers []Layer
}

// Tenant is a `tenant "id" k=v ...` declaration.
type Tenant struct {
	Pos   Pos
	Name  string
	Attrs []Attr
}

// Deploy is a `deploy "model" k=v ...` item inside the scenario.
type Deploy struct {
	Pos   Pos
	Model string
	Attrs []Attr
}

// Traffic is a `traffic <shape> k=v ...` item (shape: poisson | diurnal).
type Traffic struct {
	Pos   Pos
	Shape string
	Attrs []Attr
}

// Storm is a `storm <kind> k=v ...` item (kind: kill | drain).
type Storm struct {
	Pos   Pos
	Kind  string
	Attrs []Attr
}

// Scenario is the single `scenario { ... }` block.
type Scenario struct {
	Pos      Pos
	Settings []Attr         // seed = 7, duration = 30s, ...
	Devices  map[string]int // nil unless a devices block/setting appeared
	// DeviceCount is set instead of Devices for `devices = N` shorthand.
	DeviceCount int
	DevicesPos  Pos
	Deploys     []Deploy
	Traffic     []Traffic
	Storms      []Storm
}

// File is one parsed .mlw file.
type File struct {
	Models   []Model
	Tenants  []Tenant
	Scenario *Scenario
}

// Print renders the file in canonical form: parsing the output yields a
// semantically identical File (Equal reports true), and printing again
// yields the same bytes.
func (f *File) Print() string {
	var b strings.Builder
	for _, m := range f.Models {
		fmt.Fprintf(&b, "model %s {\n", strconv.Quote(m.Name))
		for _, l := range m.Layers {
			b.WriteString("  layer " + l.Kind)
			printAttrs(&b, l.Attrs)
			b.WriteString("\n")
		}
		b.WriteString("}\n")
	}
	for _, t := range f.Tenants {
		b.WriteString("tenant " + strconv.Quote(t.Name))
		printAttrs(&b, t.Attrs)
		b.WriteString("\n")
	}
	if s := f.Scenario; s != nil {
		b.WriteString("scenario {\n")
		for _, a := range s.Settings {
			fmt.Fprintf(&b, "  %s = %s\n", a.Name, a.Value)
		}
		if s.Devices != nil {
			b.WriteString("  devices {\n")
			for _, name := range sortedKeys(s.Devices) {
				fmt.Fprintf(&b, "    %s = %d\n", name, s.Devices[name])
			}
			b.WriteString("  }\n")
		} else if s.DeviceCount > 0 {
			fmt.Fprintf(&b, "  devices = %d\n", s.DeviceCount)
		}
		for _, d := range s.Deploys {
			b.WriteString("  deploy " + strconv.Quote(d.Model))
			printAttrs(&b, d.Attrs)
			b.WriteString("\n")
		}
		for _, tr := range s.Traffic {
			b.WriteString("  traffic " + tr.Shape)
			printAttrs(&b, tr.Attrs)
			b.WriteString("\n")
		}
		for _, st := range s.Storms {
			b.WriteString("  storm " + st.Kind)
			printAttrs(&b, st.Attrs)
			b.WriteString("\n")
		}
		b.WriteString("}\n")
	}
	return b.String()
}

func printAttrs(b *strings.Builder, attrs []Attr) {
	for _, a := range attrs {
		fmt.Fprintf(b, " %s=%s", a.Name, a.Value)
	}
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// Equal reports semantic equality of two files (positions excluded).
func (f *File) Equal(g *File) bool {
	if len(f.Models) != len(g.Models) || len(f.Tenants) != len(g.Tenants) {
		return false
	}
	for i := range f.Models {
		a, b := f.Models[i], g.Models[i]
		if a.Name != b.Name || len(a.Layers) != len(b.Layers) {
			return false
		}
		for j := range a.Layers {
			if a.Layers[j].Kind != b.Layers[j].Kind || !equalAttrs(a.Layers[j].Attrs, b.Layers[j].Attrs) {
				return false
			}
		}
	}
	for i := range f.Tenants {
		if f.Tenants[i].Name != g.Tenants[i].Name || !equalAttrs(f.Tenants[i].Attrs, g.Tenants[i].Attrs) {
			return false
		}
	}
	if (f.Scenario == nil) != (g.Scenario == nil) {
		return false
	}
	if f.Scenario == nil {
		return true
	}
	a, b := f.Scenario, g.Scenario
	if !equalAttrs(a.Settings, b.Settings) || a.DeviceCount != b.DeviceCount {
		return false
	}
	if (a.Devices == nil) != (b.Devices == nil) || len(a.Devices) != len(b.Devices) {
		return false
	}
	for k, v := range a.Devices {
		if b.Devices[k] != v {
			return false
		}
	}
	if len(a.Deploys) != len(b.Deploys) || len(a.Traffic) != len(b.Traffic) || len(a.Storms) != len(b.Storms) {
		return false
	}
	for i := range a.Deploys {
		if a.Deploys[i].Model != b.Deploys[i].Model || !equalAttrs(a.Deploys[i].Attrs, b.Deploys[i].Attrs) {
			return false
		}
	}
	for i := range a.Traffic {
		if a.Traffic[i].Shape != b.Traffic[i].Shape || !equalAttrs(a.Traffic[i].Attrs, b.Traffic[i].Attrs) {
			return false
		}
	}
	for i := range a.Storms {
		if a.Storms[i].Kind != b.Storms[i].Kind || !equalAttrs(a.Storms[i].Attrs, b.Storms[i].Attrs) {
			return false
		}
	}
	return true
}

func equalAttrs(a, b []Attr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name || !equalValue(a[i].Value, b[i].Value) {
			return false
		}
	}
	return true
}
