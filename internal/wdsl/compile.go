package wdsl

import (
	"fmt"
	"time"

	"mlvfpga/internal/kernels"
	"mlvfpga/internal/resource"
	"mlvfpga/internal/tenant"
)

// LayerIR is one compiled layer: either a recurrent cell the runtime can
// lease (Rnn valid) or a feed-forward chain (Mlp valid when Kind=="mlp").
type LayerIR struct {
	Kind string
	Rnn  kernels.LayerSpec
	Mlp  kernels.MLPSpec
}

// ModelIR is a compiled model graph.
type ModelIR struct {
	Name   string
	Layers []LayerIR
}

// Leasable reports whether every layer of the model can be deployed as a
// runtime lease (the lease path serves recurrent cells; MLP chains
// compile to AS-ISA programs but have no lease form yet).
func (m *ModelIR) Leasable() bool {
	for _, l := range m.Layers {
		if l.Kind == "mlp" {
			return false
		}
	}
	return true
}

// DeployIR is one scenario deploy directive.
type DeployIR struct {
	Model    string
	Tenant   string
	Replicas int
}

// TrafficIR is one open-loop arrival process.
type TrafficIR struct {
	Shape  string  // poisson | diurnal
	Rate   float64 // mean arrivals per second (peak rate for diurnal)
	Trough float64 // diurnal: fraction of peak at the valley, 0..1
	Period time.Duration
	Tenant string
	Model  string
}

// StormIR is one fault storm: a correlated batch of kills or an
// administrative drain wave.
type StormIR struct {
	Kind    string // kill | drain
	At      time.Duration
	Devices int
	// For is how long the storm holds before devices revive/undrain;
	// zero means the outage lasts to the end of the run.
	For time.Duration
}

// ScenarioIR is the compiled scenario block.
type ScenarioIR struct {
	Seed        int64
	Cluster     resource.ClusterSpec
	DeviceCount int
	Duration    time.Duration
	Heartbeat   time.Duration
	Tick        time.Duration
	// Sample is the fraction of arrivals executed as real inferences on
	// the stack under test (the rest flow through the analytic queue
	// model only).
	Sample float64
	// QueueCap sheds an arrival when its lease already has this many
	// service times of backlog queued.
	QueueCap int
	Deploys  []DeployIR
	Traffic  []TrafficIR
	Storms   []StormIR
}

// Spec is a fully compiled workload description.
type Spec struct {
	Models   []ModelIR
	ByName   map[string]*ModelIR
	Tenants  []tenant.Tenant
	Scenario *ScenarioIR
}

// Compile lowers a parsed file to the typed IR, checking attribute
// schemas, cross-references and value ranges. Errors are positioned
// *Error values whose production names the declaration being checked.
func Compile(f *File) (*Spec, error) {
	s := &Spec{ByName: map[string]*ModelIR{}}
	for _, m := range f.Models {
		ir, err := compileModel(m)
		if err != nil {
			return nil, err
		}
		if _, dup := s.ByName[ir.Name]; dup {
			return nil, &Error{Pos: m.Pos, Production: "model", Msg: fmt.Sprintf("duplicate model %q", ir.Name)}
		}
		s.Models = append(s.Models, *ir)
		s.ByName[ir.Name] = &s.Models[len(s.Models)-1]
	}
	seenTenant := map[string]bool{}
	for _, t := range f.Tenants {
		tn, err := compileTenant(t)
		if err != nil {
			return nil, err
		}
		if seenTenant[tn.ID] {
			return nil, &Error{Pos: t.Pos, Production: "tenant", Msg: fmt.Sprintf("duplicate tenant %q", tn.ID)}
		}
		seenTenant[tn.ID] = true
		s.Tenants = append(s.Tenants, *tn)
	}
	if f.Scenario != nil {
		ir, err := compileScenario(f.Scenario, s, seenTenant)
		if err != nil {
			return nil, err
		}
		s.Scenario = ir
	}
	return s, nil
}

// attrSchema walks an attribute list against a field table, failing on
// unknown names; each field func validates and stores one value.
func attrSchema(production string, attrs []Attr, fields map[string]func(Value) error) error {
	for _, a := range attrs {
		set, ok := fields[a.Name]
		if !ok {
			return &Error{Pos: a.Pos, Production: production,
				Msg: fmt.Sprintf("unknown attribute %q (known: %s)", a.Name, knownNames(fields))}
		}
		if err := set(a.Value); err != nil {
			return &Error{Pos: a.Value.Pos, Production: production,
				Msg: fmt.Sprintf("attribute %q: %v", a.Name, err)}
		}
	}
	return nil
}

func knownNames(fields map[string]func(Value) error) string {
	names := make([]string, 0, len(fields))
	for k := range fields {
		names = append(names, k)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

func wantPosInt(dst *int) func(Value) error {
	return func(v Value) error {
		if v.Kind != IntVal || v.Int <= 0 {
			return fmt.Errorf("want a positive integer, found %s", v)
		}
		*dst = int(v.Int)
		return nil
	}
}

func wantInt64(dst *int64) func(Value) error {
	return func(v Value) error {
		if v.Kind != IntVal {
			return fmt.Errorf("want an integer, found %s", v)
		}
		*dst = v.Int
		return nil
	}
}

func wantDuration(dst *time.Duration) func(Value) error {
	return func(v Value) error {
		if v.Kind != DurationVal {
			return fmt.Errorf("want a duration like 500ms, found %s", v)
		}
		*dst = v.Dur
		return nil
	}
}

func wantString(dst *string) func(Value) error {
	return func(v Value) error {
		if v.Kind != StringVal {
			return fmt.Errorf("want a quoted string, found %s", v)
		}
		*dst = v.Str
		return nil
	}
}

// wantFraction accepts a percent (divided by 100) or a plain 0..1 float.
func wantFraction(dst *float64) func(Value) error {
	return func(v Value) error {
		f := 0.0
		switch v.Kind {
		case PercentVal:
			f = v.Float / 100
		case FloatVal:
			f = v.Float
		case IntVal:
			f = float64(v.Int)
		default:
			return fmt.Errorf("want a percentage like 10%%, found %s", v)
		}
		if f < 0 || f > 1 {
			return fmt.Errorf("want a value in [0%%, 100%%], found %s", v)
		}
		*dst = f
		return nil
	}
}

func compileModel(m Model) (*ModelIR, error) {
	if len(m.Layers) == 0 {
		return nil, &Error{Pos: m.Pos, Production: "model", Msg: fmt.Sprintf("model %q has no layers", m.Name)}
	}
	ir := &ModelIR{Name: m.Name}
	for _, l := range m.Layers {
		layer := LayerIR{Kind: l.Kind}
		if l.Kind == "mlp" {
			var dim, nlayers int
			act := "relu"
			err := attrSchema("layer", l.Attrs, map[string]func(Value) error{
				"dim":    wantPosInt(&dim),
				"layers": wantPosInt(&nlayers),
				"act": func(v Value) error {
					if v.Kind != IdentVal {
						return fmt.Errorf("want relu, sigmoid, tanh or linear, found %s", v)
					}
					act = v.Str
					return nil
				},
			})
			if err != nil {
				return nil, err
			}
			if dim == 0 || nlayers == 0 {
				return nil, &Error{Pos: l.Pos, Production: "layer",
					Msg: "mlp layer needs dim= and layers="}
			}
			a, ok := map[string]kernels.Activation{
				"relu": kernels.ReLU, "sigmoid": kernels.SigmoidAct,
				"tanh": kernels.TanhAct, "linear": kernels.NoAct,
			}[act]
			if !ok {
				return nil, &Error{Pos: l.Pos, Production: "layer",
					Msg: fmt.Sprintf("unknown activation %q (want relu, sigmoid, tanh or linear)", act)}
			}
			layer.Mlp = kernels.MLPSpec{Dim: dim, Layers: nlayers, Act: a}
		} else {
			var hidden, steps int
			err := attrSchema("layer", l.Attrs, map[string]func(Value) error{
				"hidden": wantPosInt(&hidden),
				"steps":  wantPosInt(&steps),
			})
			if err != nil {
				return nil, err
			}
			if hidden == 0 || steps == 0 {
				return nil, &Error{Pos: l.Pos, Production: "layer",
					Msg: fmt.Sprintf("%s layer needs hidden= and steps=", l.Kind)}
			}
			kind := map[string]kernels.RNNKind{
				"lstm": kernels.LSTM, "gru": kernels.GRU, "attention": kernels.Attention,
			}[l.Kind]
			layer.Rnn = kernels.LayerSpec{Kind: kind, Hidden: hidden, TimeSteps: steps}
		}
		ir.Layers = append(ir.Layers, layer)
	}
	return ir, nil
}

func compileTenant(t Tenant) (*tenant.Tenant, error) {
	if t.Name == "" {
		return nil, &Error{Pos: t.Pos, Production: "tenant", Msg: "tenant name must not be empty"}
	}
	tn := &tenant.Tenant{ID: t.Name, Key: t.Name + "-key", Class: tenant.Latency}
	err := attrSchema("tenant", t.Attrs, map[string]func(Value) error{
		"class": func(v Value) error {
			switch {
			case v.Kind == IdentVal && v.Str == "latency":
				tn.Class = tenant.Latency
			case v.Kind == IdentVal && v.Str == "batch":
				tn.Class = tenant.Batch
			default:
				return fmt.Errorf("want latency or batch, found %s", v)
			}
			return nil
		},
		"key":           wantString(&tn.Key),
		"weight":        wantPosInt(&tn.Weight),
		"max_leases":    wantPosInt(&tn.Quotas.MaxLeases),
		"max_devices":   wantPosInt(&tn.Quotas.MaxDevices),
		"max_blocks":    wantPosInt(&tn.Quotas.MaxBlocks),
		"max_in_flight": wantPosInt(&tn.Quotas.MaxInFlight),
	})
	if err != nil {
		return nil, err
	}
	return tn, nil
}

func compileScenario(sc *Scenario, spec *Spec, tenants map[string]bool) (*ScenarioIR, error) {
	ir := &ScenarioIR{
		Seed:      1,
		Heartbeat: 500 * time.Millisecond,
		Tick:      time.Second,
		Sample:    0.10,
		QueueCap:  8,
	}
	for _, a := range sc.Settings {
		err := attrSchema("setting", []Attr{a}, map[string]func(Value) error{
			"seed":      wantInt64(&ir.Seed),
			"duration":  wantDuration(&ir.Duration),
			"heartbeat": wantDuration(&ir.Heartbeat),
			"tick":      wantDuration(&ir.Tick),
			"sample":    wantFraction(&ir.Sample),
			"queue_cap": wantPosInt(&ir.QueueCap),
		})
		if err != nil {
			return nil, err
		}
	}
	if ir.Duration <= 0 {
		return nil, &Error{Pos: sc.Pos, Production: "scenario", Msg: "scenario needs duration="}
	}
	if ir.Heartbeat <= 0 || ir.Tick <= 0 {
		return nil, &Error{Pos: sc.Pos, Production: "scenario", Msg: "heartbeat and tick must be positive"}
	}

	// Device inventory: an explicit per-part map, or the `devices = N`
	// shorthand splitting N across the paper's two parts at its 3:1 ratio.
	switch {
	case sc.Devices != nil:
		ir.Cluster = resource.ClusterSpec{}
		for part, n := range sc.Devices {
			if _, err := resource.LookupDevice(part); err != nil {
				return nil, &Error{Pos: sc.DevicesPos, Production: "devices",
					Msg: fmt.Sprintf("unknown device part %q", part)}
			}
			ir.Cluster[part] = n
			ir.DeviceCount += n
		}
	case sc.DeviceCount > 0:
		ir.DeviceCount = sc.DeviceCount
		vu := (3*sc.DeviceCount + 3) / 4
		ku := sc.DeviceCount - vu
		ir.Cluster = resource.ClusterSpec{}
		if vu > 0 {
			ir.Cluster[resource.XCVU37P.Name] = vu
		}
		if ku > 0 {
			ir.Cluster[resource.XCKU115.Name] = ku
		}
	default:
		ir.Cluster = resource.PaperCluster()
		ir.DeviceCount = 4
	}

	for _, d := range sc.Deploys {
		dep := DeployIR{Model: d.Model, Replicas: 1}
		err := attrSchema("deploy", d.Attrs, map[string]func(Value) error{
			"tenant":   wantString(&dep.Tenant),
			"replicas": wantPosInt(&dep.Replicas),
		})
		if err != nil {
			return nil, err
		}
		m, ok := spec.ByName[d.Model]
		if !ok {
			return nil, &Error{Pos: d.Pos, Production: "deploy", Msg: fmt.Sprintf("unknown model %q", d.Model)}
		}
		if !m.Leasable() {
			return nil, &Error{Pos: d.Pos, Production: "deploy",
				Msg: fmt.Sprintf("model %q contains an mlp layer; mlp chains compile but have no lease form", d.Model)}
		}
		if dep.Tenant != "" && !tenants[dep.Tenant] {
			return nil, &Error{Pos: d.Pos, Production: "deploy", Msg: fmt.Sprintf("unknown tenant %q", dep.Tenant)}
		}
		if dep.Tenant == "" && len(spec.Tenants) > 0 {
			return nil, &Error{Pos: d.Pos, Production: "deploy",
				Msg: "deploy needs tenant= when tenants are declared"}
		}
		ir.Deploys = append(ir.Deploys, dep)
	}

	deployed := map[string]bool{}
	for _, d := range ir.Deploys {
		deployed[d.Model] = true
	}
	for _, tr := range sc.Traffic {
		t := TrafficIR{Shape: tr.Shape, Trough: 0.25, Period: ir.Duration}
		err := attrSchema("traffic", tr.Attrs, map[string]func(Value) error{
			"rate": func(v Value) error {
				if v.Kind != RateVal || v.Float <= 0 {
					return fmt.Errorf("want a positive rate like 40/s, found %s", v)
				}
				t.Rate = v.Float
				return nil
			},
			"tenant": wantString(&t.Tenant),
			"model":  wantString(&t.Model),
			"trough": wantFraction(&t.Trough),
			"period": wantDuration(&t.Period),
		})
		if err != nil {
			return nil, err
		}
		if t.Rate == 0 {
			return nil, &Error{Pos: tr.Pos, Production: "traffic", Msg: "traffic needs rate="}
		}
		if t.Model == "" {
			return nil, &Error{Pos: tr.Pos, Production: "traffic", Msg: "traffic needs model="}
		}
		if !deployed[t.Model] {
			return nil, &Error{Pos: tr.Pos, Production: "traffic",
				Msg: fmt.Sprintf("traffic targets model %q which the scenario never deploys", t.Model)}
		}
		if t.Tenant != "" && !tenants[t.Tenant] {
			return nil, &Error{Pos: tr.Pos, Production: "traffic", Msg: fmt.Sprintf("unknown tenant %q", t.Tenant)}
		}
		if t.Tenant == "" && len(spec.Tenants) > 0 {
			return nil, &Error{Pos: tr.Pos, Production: "traffic",
				Msg: "traffic needs tenant= when tenants are declared"}
		}
		if t.Period <= 0 {
			return nil, &Error{Pos: tr.Pos, Production: "traffic", Msg: "period must be positive"}
		}
		ir.Traffic = append(ir.Traffic, t)
	}

	for _, st := range sc.Storms {
		s := StormIR{Kind: st.Kind}
		err := attrSchema("storm", st.Attrs, map[string]func(Value) error{
			"at":      wantDuration(&s.At),
			"devices": wantPosInt(&s.Devices),
			"for":     wantDuration(&s.For),
		})
		if err != nil {
			return nil, err
		}
		if s.Devices == 0 {
			return nil, &Error{Pos: st.Pos, Production: "storm", Msg: "storm needs devices="}
		}
		if s.At <= 0 || s.At >= ir.Duration {
			return nil, &Error{Pos: st.Pos, Production: "storm",
				Msg: fmt.Sprintf("storm at=%s must fall inside the run (0, %s)", s.At, ir.Duration)}
		}
		ir.Storms = append(ir.Storms, s)
	}
	return ir, nil
}

// BuildKernels compiles every layer of every model in the spec down to
// AS-ISA programs (tiles=1, deterministic weights), proving the described
// graphs are expressible in the ISA. It returns the per-model program
// instruction counts, keyed by model name.
func BuildKernels(spec *Spec, seed int64) (map[string][]int, error) {
	out := map[string][]int{}
	for _, m := range spec.Models {
		var counts []int
		for i, l := range m.Layers {
			if l.Kind == "mlp" {
				w, err := kernels.RandomMLPWeights(l.Mlp, seed+int64(i))
				if err != nil {
					return nil, fmt.Errorf("wdsl: model %q layer %d: %w", m.Name, i, err)
				}
				k, err := kernels.BuildMLP(w, 1)
				if err != nil {
					return nil, fmt.Errorf("wdsl: model %q layer %d: %w", m.Name, i, err)
				}
				counts = append(counts, len(k.Prog))
				continue
			}
			w := kernels.RandomWeights(l.Rnn.Kind, l.Rnn.Hidden, seed+int64(i))
			k, err := kernels.Build(w, l.Rnn.TimeSteps, 1)
			if err != nil {
				return nil, fmt.Errorf("wdsl: model %q layer %d: %w", m.Name, i, err)
			}
			counts = append(counts, len(k.Prog))
		}
		out[m.Name] = counts
	}
	return out, nil
}
