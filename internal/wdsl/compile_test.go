package wdsl

import (
	"testing"
	"time"

	"mlvfpga/internal/kernels"
	"mlvfpga/internal/tenant"
)

func TestCompileExample(t *testing.T) {
	f, err := Parse(exampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	m := spec.ByName["echo-lstm"]
	if m == nil || len(m.Layers) != 2 {
		t.Fatalf("echo-lstm = %+v", m)
	}
	if got := m.Layers[0].Rnn; got != (kernels.LayerSpec{Kind: kernels.LSTM, Hidden: 64, TimeSteps: 2}) {
		t.Errorf("layer 0 = %+v", got)
	}
	if aft := spec.ByName["aft"]; aft.Layers[0].Rnn.Kind != kernels.Attention {
		t.Errorf("aft kind = %v", aft.Layers[0].Rnn.Kind)
	}
	if sc := spec.ByName["scorer"]; sc.Leasable() || sc.Layers[0].Mlp.Dim != 16 {
		t.Errorf("scorer = %+v leasable=%v", sc.Layers[0], sc.Leasable())
	}
	if len(spec.Tenants) != 2 || spec.Tenants[1].Class != tenant.Batch || spec.Tenants[1].Weight != 2 {
		t.Errorf("tenants = %+v", spec.Tenants)
	}
	s := spec.Scenario
	if s.Seed != 7 || s.Duration != 30*time.Second || s.Sample != 0.25 || s.QueueCap != 8 {
		t.Errorf("scenario = %+v", s)
	}
	if s.Cluster["XCVU37P"] != 9 || s.Cluster["XCKU115"] != 3 || s.DeviceCount != 12 {
		t.Errorf("cluster = %v count=%d", s.Cluster, s.DeviceCount)
	}
	if s.Deploys[0].Replicas != 2 || s.Deploys[1].Tenant != "bat-0" {
		t.Errorf("deploys = %+v", s.Deploys)
	}
	tr := s.Traffic[1]
	if tr.Shape != "diurnal" || tr.Rate != 20 || tr.Trough != 0.20 || tr.Period != 10*time.Second {
		t.Errorf("diurnal traffic = %+v", tr)
	}
	if s.Storms[0].Kind != "kill" || s.Storms[0].At != 10*time.Second || s.Storms[0].For != 5*time.Second {
		t.Errorf("storm 0 = %+v", s.Storms[0])
	}
}

// TestCompileDefaults pins the scenario defaults a minimal file gets.
func TestCompileDefaults(t *testing.T) {
	f, err := Parse("scenario { duration = 1s }")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	s := spec.Scenario
	if s.Seed != 1 || s.Heartbeat != 500*time.Millisecond || s.Tick != time.Second {
		t.Errorf("defaults = %+v", s)
	}
	if s.Sample != 0.10 || s.QueueCap != 8 {
		t.Errorf("sample/queue defaults = %v/%d", s.Sample, s.QueueCap)
	}
	// No devices declared: the paper's 4-device cluster.
	if s.Cluster["XCVU37P"] != 3 || s.Cluster["XCKU115"] != 1 || s.DeviceCount != 4 {
		t.Errorf("default cluster = %v", s.Cluster)
	}
}

// TestBuildKernels proves every layer kind in the example compiles down
// to an executable AS-ISA program.
func TestBuildKernels(t *testing.T) {
	f, err := Parse(exampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := BuildKernels(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 3 {
		t.Fatalf("kernel sets = %v", counts)
	}
	for name, cs := range counts {
		for i, n := range cs {
			if n <= 0 {
				t.Errorf("model %s layer %d compiled to %d instructions", name, i, n)
			}
		}
	}
}
