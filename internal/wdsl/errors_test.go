package wdsl

import (
	"errors"
	"strings"
	"testing"
)

// TestParseErrors is the table-driven diagnostics suite: every malformed
// input must produce a positioned *Error naming the production that
// rejected it — and must never panic.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name       string
		src        string
		line, col  int
		production string
		msgPart    string
	}{
		{"stray token", "42", 1, 1, "file", "expected 'model', 'tenant' or 'scenario'"},
		{"unknown decl", "banana \"x\"", 1, 1, "file", "expected 'model', 'tenant' or 'scenario'"},
		{"model missing name", "model {", 1, 7, "model", "expected string"},
		{"model missing brace", "model \"m\" layer", 1, 11, "model", "expected '{'"},
		{"model unclosed", "model \"m\" {\n  layer lstm hidden=1 steps=1\n", 3, 1, "model", "expected 'layer' or '}'"},
		{"bad layer kind", "model \"m\" {\n  layer cnn hidden=4\n}", 2, 9, "layer", "unknown layer kind \"cnn\""},
		{"layer attr no value", "model \"m\" {\n  layer lstm hidden=\n}", 3, 1, "layer", "expected a value"},
		{"tenant missing name", "tenant class=batch", 1, 8, "tenant", "expected string"},
		{"duplicate attribute", "tenant \"t\" class=batch class=latency", 1, 24, "tenant", "duplicate attribute \"class\""},
		{"duplicate scenario", "scenario { }\nscenario { }", 2, 1, "file", "duplicate scenario block"},
		{"scenario junk", "scenario { 7 }", 1, 12, "scenario", "expected a setting"},
		{"devices bad count", "scenario { devices = blue }", 1, 22, "devices", "expected number"},
		{"devices zero", "scenario { devices = 0 }", 1, 22, "devices", "positive integer"},
		{"devices dup part", "scenario { devices { XCVU37P = 1 XCVU37P = 2 } }", 1, 34, "devices", "duplicate device part"},
		{"devices dup decl", "scenario { devices = 4 devices = 8 }", 1, 24, "devices", "duplicate devices declaration"},
		{"deploy missing model", "scenario { deploy tenant=\"t\" }", 1, 19, "deploy", "expected string"},
		{"traffic bad shape", "scenario { traffic burst rate=1/s }", 1, 20, "traffic", "unknown arrival shape \"burst\""},
		{"storm bad kind", "scenario { storm flood at=1s }", 1, 18, "storm", "unknown storm kind \"flood\""},
		{"bad rate unit", "scenario { x = 5/m }", 1, 18, "setting", "rate unit must be /s"},
		{"percent on string", `tenant "t" p="x"%`, 1, 17, "file", ""},
		{"malformed number", "tenant \"t\" a=12q", 1, 14, "tenant", "malformed number"},
		{"huge integer", "tenant \"t\" a=99999999999999999999", 1, 14, "tenant", "out of range"},
		{"unterminated string", "model \"oops", 1, 7, "model", "unterminated string"},
		{"bad escape", `tenant "a\q"`, 1, 8, "tenant", "unknown escape"},
		{"stray character", "model @", 1, 7, "model", "unexpected character"},
		{"value at eof", "tenant \"t\" a=", 1, 14, "tenant", "expected a value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded: %+v", tc.src, f)
			}
			var perr *Error
			if !errors.As(err, &perr) {
				t.Fatalf("error is %T, want *wdsl.Error", err)
			}
			if perr.Pos.Line != tc.line || perr.Pos.Col != tc.col {
				t.Errorf("position = %s, want %d:%d (%v)", perr.Pos, tc.line, tc.col, perr)
			}
			if perr.Production == "" {
				t.Errorf("diagnostic has no production: %v", perr)
			}
			if tc.production != "" && perr.Production != tc.production {
				t.Errorf("production = %q, want %q (%v)", perr.Production, tc.production, perr)
			}
			if tc.msgPart != "" && !strings.Contains(perr.Msg, tc.msgPart) {
				t.Errorf("message %q does not contain %q", perr.Msg, tc.msgPart)
			}
			if !strings.Contains(perr.Error(), ":") {
				t.Errorf("rendered error %q lacks position", perr.Error())
			}
		})
	}
}

// TestCompileErrors covers the semantic layer: schema violations and
// dangling references also carry positions and productions.
func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name       string
		src        string
		production string
		msgPart    string
	}{
		{"empty model", `model "m" { }`, "model", "no layers"},
		{"layer missing attrs", "model \"m\" {\n layer lstm hidden=4\n}", "layer", "needs hidden= and steps="},
		{"layer unknown attr", "model \"m\" {\n layer lstm hidden=4 steps=1 depth=2\n}", "layer", "unknown attribute \"depth\""},
		{"layer negative-ish", "model \"m\" {\n layer gru hidden=0 steps=1\n}", "layer", "positive integer"},
		{"mlp bad act", "model \"m\" {\n layer mlp dim=4 layers=2 act=softmax\n}", "layer", "unknown activation"},
		{"duplicate model", "model \"m\" { layer lstm hidden=4 steps=1 }\nmodel \"m\" { layer lstm hidden=4 steps=1 }", "model", "duplicate model"},
		{"duplicate tenant", "tenant \"t\"\ntenant \"t\"", "tenant", "duplicate tenant"},
		{"tenant bad class", `tenant "t" class=gold`, "tenant", "want latency or batch"},
		{"scenario no duration", "scenario { seed = 1 }", "scenario", "needs duration="},
		{"unknown setting", "scenario { duration = 1s warp = 9 }", "setting", "unknown attribute"},
		{"deploy unknown model", "scenario { duration = 1s deploy \"ghost\" }", "deploy", "unknown model"},
		{"deploy mlp model", "model \"s\" { layer mlp dim=4 layers=2 }\nscenario { duration = 1s deploy \"s\" }", "deploy", "no lease form"},
		{"deploy unknown tenant", "model \"m\" { layer lstm hidden=4 steps=1 }\ntenant \"t\"\nscenario { duration = 1s deploy \"m\" tenant=\"ghost\" }", "deploy", "unknown tenant"},
		{"deploy tenantless", "model \"m\" { layer lstm hidden=4 steps=1 }\ntenant \"t\"\nscenario { duration = 1s deploy \"m\" }", "deploy", "needs tenant="},
		{"traffic no model", "scenario { duration = 1s traffic poisson rate=1/s }", "traffic", "needs model="},
		{"traffic undeployed", "model \"m\" { layer lstm hidden=4 steps=1 }\nscenario { duration = 1s traffic poisson rate=1/s model=\"m\" }", "traffic", "never deploys"},
		{"traffic no rate", "model \"m\" { layer lstm hidden=4 steps=1 }\nscenario { duration = 1s deploy \"m\" traffic poisson model=\"m\" }", "traffic", "needs rate="},
		{"storm no devices", "scenario { duration = 10s storm kill at=1s }", "storm", "needs devices="},
		{"storm outside run", "scenario { duration = 10s storm kill at=20s devices=1 }", "storm", "inside the run"},
		{"unknown part", "scenario { duration = 1s devices { XC7Z020 = 4 } }", "devices", "unknown device part"},
		{"sample too big", "scenario { duration = 1s sample = 150% }", "setting", "[0%, 100%]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, err := Parse(tc.src)
			if err != nil {
				t.Fatalf("parse failed before compile: %v", err)
			}
			_, err = Compile(f)
			if err == nil {
				t.Fatalf("Compile(%q) succeeded", tc.src)
			}
			var perr *Error
			if !errors.As(err, &perr) {
				t.Fatalf("error is %T, want *wdsl.Error", err)
			}
			if perr.Pos.Line == 0 || perr.Pos.Col == 0 {
				t.Errorf("compile diagnostic missing position: %v", perr)
			}
			if perr.Production != tc.production {
				t.Errorf("production = %q, want %q (%v)", perr.Production, tc.production, perr)
			}
			if !strings.Contains(perr.Msg, tc.msgPart) {
				t.Errorf("message %q does not contain %q", perr.Msg, tc.msgPart)
			}
		})
	}
}
