package wdsl

import (
	"testing"
)

// FuzzParseMLW is the parser's crash-freedom and canonicalization fuzz
// target: Parse must never panic on arbitrary bytes, and whenever it
// accepts an input, the printed form must reparse to an equal AST and the
// printer must be a fixpoint on its own output.
func FuzzParseMLW(f *testing.F) {
	seeds := []string{
		"",
		"# comment only\n",
		exampleSrc,
		`model "m" { layer lstm hidden=64 steps=2 }`,
		`model "a" { layer attention hidden=32 steps=4 }`,
		`model "s" { layer mlp dim=8 layers=2 act=tanh }`,
		`tenant "t" class=batch max_leases=3 weight=2`,
		"scenario { duration = 1s devices = 1000 }",
		"scenario { seed = 9 duration = 2m30s sample = 12.5% queue_cap = 4 }",
		"scenario { duration = 1s devices { XCVU37P = 3 XCKU115 = 1 } }",
		"model \"m\" { layer gru hidden=4 steps=1 }\nscenario { duration = 5s deploy \"m\"\ntraffic diurnal rate=7/s trough=30% period=2s model=\"m\"\nstorm kill at=1s devices=1 for=500ms }",
		`tenant "q" g="quo\"ted\n" r=40/s`,
		"model {",
		"scenario { devices = }",
		"tenant \"t\" a=12q b=",
		"model \"m\" { layer cnn }",
		"\"stray\" string",
		"scenario { storm flood at=1s }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		f1, err := Parse(src) // must not panic, whatever the bytes
		if err != nil {
			var perr *Error
			switch e := err.(type) {
			case *Error:
				perr = e
			default:
				t.Fatalf("Parse error is %T, want *wdsl.Error: %v", err, err)
			}
			if perr.Pos.Line < 1 || perr.Pos.Col < 1 || perr.Production == "" {
				t.Fatalf("diagnostic missing position or production: %+v", perr)
			}
			return
		}
		p1 := f1.Print()
		f2, err := Parse(p1)
		if err != nil {
			t.Fatalf("printed form does not reparse: %v\ninput: %q\nprinted:\n%s", err, src, p1)
		}
		if !f1.Equal(f2) {
			t.Fatalf("print→parse changed the AST\ninput: %q\nprinted:\n%s", src, p1)
		}
		if p2 := f2.Print(); p2 != p1 {
			t.Fatalf("printer not a fixpoint\nfirst:\n%s\nsecond:\n%s", p1, p2)
		}
		// Compile must be panic-free too; its errors are positioned.
		if _, cerr := Compile(f1); cerr != nil {
			var perr *Error
			if e, ok := cerr.(*Error); ok {
				perr = e
			} else {
				t.Fatalf("Compile error is %T, want *wdsl.Error: %v", cerr, cerr)
			}
			if perr.Pos.Line < 1 || perr.Pos.Col < 1 || perr.Production == "" {
				t.Fatalf("compile diagnostic missing position or production: %+v", perr)
			}
		}
	})
}
