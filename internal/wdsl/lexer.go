// Package wdsl implements the workload description language: small text
// files (conventionally `.mlw`) that describe model graphs, tenants,
// arrival processes and fault storms for the scenario engine. The
// language is parsed by a hand-written recursive-descent parser over a
// separate lexer; every diagnostic carries a line/column position and the
// name of the grammar production that rejected the input, and the printer
// is canonical (parse → print → parse is a fixpoint).
package wdsl

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Pos is a 1-based source position.
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Error is a positioned diagnostic naming the grammar production that
// rejected the input.
type Error struct {
	Pos        Pos
	Production string
	Msg        string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s: %s: %s", e.Pos, e.Production, e.Msg)
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokString // "..." with \-escapes
	tokNumber // digits, optionally dotted and/or unit-suffixed: 42, 0.5, 500ms, 1h30m
	tokLBrace
	tokRBrace
	tokEq
	tokSlash
	tokPercent
	tokErr // lexical error; text holds the message
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokNumber:
		return "number"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokEq:
		return "'='"
	case tokSlash:
		return "'/'"
	case tokPercent:
		return "'%'"
	}
	return "invalid token"
}

type token struct {
	kind tokKind
	text string
	pos  Pos
}

// lexer scans the whole input up front; the parser works on the token
// slice with two-token lookahead.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func lex(src string) []token {
	l := &lexer{src: src, line: 1, col: 1}
	var toks []token
	for {
		t := l.next()
		toks = append(toks, t)
		if t.kind == tokEOF || t.kind == tokErr {
			return toks
		}
	}
}

func (l *lexer) peekRune() (rune, int) {
	if l.off >= len(l.src) {
		return 0, 0
	}
	return utf8.DecodeRuneInString(l.src[l.off:])
}

func (l *lexer) advance(r rune, size int) {
	l.off += size
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
}

func (l *lexer) next() token {
	// Skip whitespace and #-comments.
	for {
		r, size := l.peekRune()
		if size == 0 {
			return token{kind: tokEOF, pos: Pos{l.line, l.col}}
		}
		if r == '#' {
			for {
				r, size = l.peekRune()
				if size == 0 || r == '\n' {
					break
				}
				l.advance(r, size)
			}
			continue
		}
		if unicode.IsSpace(r) {
			l.advance(r, size)
			continue
		}
		break
	}
	pos := Pos{l.line, l.col}
	r, size := l.peekRune()
	switch {
	case r == '{':
		l.advance(r, size)
		return token{kind: tokLBrace, text: "{", pos: pos}
	case r == '}':
		l.advance(r, size)
		return token{kind: tokRBrace, text: "}", pos: pos}
	case r == '=':
		l.advance(r, size)
		return token{kind: tokEq, text: "=", pos: pos}
	case r == '/':
		l.advance(r, size)
		return token{kind: tokSlash, text: "/", pos: pos}
	case r == '%':
		l.advance(r, size)
		return token{kind: tokPercent, text: "%", pos: pos}
	case r == '"':
		return l.lexString(pos)
	case r >= '0' && r <= '9':
		return l.lexNumber(pos)
	case r == '_' || unicode.IsLetter(r):
		return l.lexIdent(pos)
	}
	return token{kind: tokErr, text: fmt.Sprintf("unexpected character %q", r), pos: pos}
}

func (l *lexer) lexIdent(pos Pos) token {
	var b strings.Builder
	for {
		r, size := l.peekRune()
		if size == 0 || !(r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)) {
			break
		}
		b.WriteRune(r)
		l.advance(r, size)
	}
	return token{kind: tokIdent, text: b.String(), pos: pos}
}

// lexNumber scans digits plus any dotted/lettered tail as one token:
// "42", "0.5", "500ms" and "1h30m" each arrive whole and the parser
// decides which value kind the raw text denotes.
func (l *lexer) lexNumber(pos Pos) token {
	var b strings.Builder
	for {
		r, size := l.peekRune()
		if size == 0 || !(r == '.' || r == 'µ' || unicode.IsLetter(r) || unicode.IsDigit(r)) {
			break
		}
		b.WriteRune(r)
		l.advance(r, size)
	}
	return token{kind: tokNumber, text: b.String(), pos: pos}
}

func (l *lexer) lexString(pos Pos) token {
	r, size := l.peekRune() // opening quote
	l.advance(r, size)
	var b strings.Builder
	for {
		r, size = l.peekRune()
		if size == 0 || r == '\n' {
			return token{kind: tokErr, text: "unterminated string", pos: pos}
		}
		l.advance(r, size)
		if r == '"' {
			return token{kind: tokString, text: b.String(), pos: pos}
		}
		if r == '\\' {
			esc, esize := l.peekRune()
			if esize == 0 {
				return token{kind: tokErr, text: "unterminated string", pos: pos}
			}
			l.advance(esc, esize)
			switch esc {
			case '"', '\\':
				b.WriteRune(esc)
			case 'n':
				b.WriteRune('\n')
			case 't':
				b.WriteRune('\t')
			default:
				return token{kind: tokErr, text: fmt.Sprintf("unknown escape \\%c", esc), pos: pos}
			}
			continue
		}
		b.WriteRune(r)
	}
}
