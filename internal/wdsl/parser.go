package wdsl

import (
	"fmt"
	"strconv"
	"time"
)

// The grammar (canonical form; '#' starts a line comment anywhere):
//
//	file     := { model | tenant | scenario }
//	model    := "model" string "{" { layer } "}"
//	layer    := "layer" kind { attr }
//	kind     := "lstm" | "gru" | "attention" | "mlp"
//	tenant   := "tenant" string { attr }
//	scenario := "scenario" "{" { setting | devices | deploy | traffic | storm } "}"
//	setting  := ident "=" value
//	devices  := "devices" ( "=" int | "{" { ident "=" int } "}" )
//	deploy   := "deploy" string { attr }
//	traffic  := "traffic" ident { attr }
//	storm    := "storm" ident { attr }
//	attr     := ident "=" value
//	value    := int | float | duration | percent | rate | ident | string
//	percent  := (int | float) "%"
//	rate     := (int | float) "/" "s"
//
// Attribute lists are delimited by lookahead: they extend while the next
// token is an identifier immediately followed by '='.

// Parse parses one .mlw source text. The error, when non-nil, is always
// a *Error carrying position and production.
func Parse(src string) (*File, error) {
	p := &parser{toks: lex(src)}
	f, err := p.file()
	if err != nil {
		return nil, err
	}
	return f, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token  { return p.toks[p.i] }
func (p *parser) peek2() token { // second token of lookahead
	if p.i+1 < len(p.toks) {
		return p.toks[p.i+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) take() token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func (p *parser) errf(pos Pos, production, format string, args ...any) *Error {
	return &Error{Pos: pos, Production: production, Msg: fmt.Sprintf(format, args...)}
}

// expect consumes one token of the given kind or fails the production.
func (p *parser) expect(kind tokKind, production string) (token, *Error) {
	t := p.peek()
	if t.kind == tokErr {
		return t, p.errf(t.pos, production, "%s", t.text)
	}
	if t.kind != kind {
		return t, p.errf(t.pos, production, "expected %s, found %s", kind, describe(t))
	}
	return p.take(), nil
}

func describe(t token) string {
	switch t.kind {
	case tokIdent, tokNumber:
		return fmt.Sprintf("%s %q", t.kind, t.text)
	case tokString:
		return fmt.Sprintf("string %s", strconv.Quote(t.text))
	case tokEOF:
		return "end of input"
	}
	return t.kind.String()
}

func (p *parser) file() (*File, *Error) {
	f := &File{}
	for {
		t := p.peek()
		switch {
		case t.kind == tokEOF:
			return f, nil
		case t.kind == tokErr:
			return nil, p.errf(t.pos, "file", "%s", t.text)
		case t.kind == tokIdent && t.text == "model":
			m, err := p.model()
			if err != nil {
				return nil, err
			}
			f.Models = append(f.Models, *m)
		case t.kind == tokIdent && t.text == "tenant":
			tn, err := p.tenant()
			if err != nil {
				return nil, err
			}
			f.Tenants = append(f.Tenants, *tn)
		case t.kind == tokIdent && t.text == "scenario":
			if f.Scenario != nil {
				return nil, p.errf(t.pos, "file", "duplicate scenario block (first at %s)", f.Scenario.Pos)
			}
			s, err := p.scenario()
			if err != nil {
				return nil, err
			}
			f.Scenario = s
		default:
			return nil, p.errf(t.pos, "file",
				"expected 'model', 'tenant' or 'scenario', found %s", describe(t))
		}
	}
}

func (p *parser) model() (*Model, *Error) {
	kw := p.take() // "model"
	name, err := p.expect(tokString, "model")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace, "model"); err != nil {
		return nil, err
	}
	m := &Model{Pos: kw.pos, Name: name.text}
	for {
		t := p.peek()
		if t.kind == tokRBrace {
			p.take()
			return m, nil
		}
		if t.kind == tokIdent && t.text == "layer" {
			l, err := p.layer()
			if err != nil {
				return nil, err
			}
			m.Layers = append(m.Layers, *l)
			continue
		}
		return nil, p.errf(t.pos, "model", "expected 'layer' or '}', found %s", describe(t))
	}
}

var layerKinds = map[string]bool{"lstm": true, "gru": true, "attention": true, "mlp": true}

func (p *parser) layer() (*Layer, *Error) {
	kw := p.take() // "layer"
	kind, err := p.expect(tokIdent, "layer")
	if err != nil {
		return nil, err
	}
	if !layerKinds[kind.text] {
		return nil, p.errf(kind.pos, "layer",
			"unknown layer kind %q (want lstm, gru, attention or mlp)", kind.text)
	}
	attrs, err := p.attrs("layer")
	if err != nil {
		return nil, err
	}
	return &Layer{Pos: kw.pos, Kind: kind.text, Attrs: attrs}, nil
}

func (p *parser) tenant() (*Tenant, *Error) {
	kw := p.take() // "tenant"
	name, err := p.expect(tokString, "tenant")
	if err != nil {
		return nil, err
	}
	attrs, err := p.attrs("tenant")
	if err != nil {
		return nil, err
	}
	return &Tenant{Pos: kw.pos, Name: name.text, Attrs: attrs}, nil
}

func (p *parser) scenario() (*Scenario, *Error) {
	kw := p.take() // "scenario"
	if _, err := p.expect(tokLBrace, "scenario"); err != nil {
		return nil, err
	}
	s := &Scenario{Pos: kw.pos}
	for {
		t := p.peek()
		switch {
		case t.kind == tokRBrace:
			p.take()
			return s, nil
		case t.kind == tokIdent && t.text == "devices":
			if err := p.devices(s); err != nil {
				return nil, err
			}
		case t.kind == tokIdent && t.text == "deploy":
			p.take()
			name, err := p.expect(tokString, "deploy")
			if err != nil {
				return nil, err
			}
			attrs, err2 := p.attrs("deploy")
			if err2 != nil {
				return nil, err2
			}
			s.Deploys = append(s.Deploys, Deploy{Pos: t.pos, Model: name.text, Attrs: attrs})
		case t.kind == tokIdent && t.text == "traffic":
			p.take()
			shape, err := p.expect(tokIdent, "traffic")
			if err != nil {
				return nil, err
			}
			if shape.text != "poisson" && shape.text != "diurnal" {
				return nil, p.errf(shape.pos, "traffic",
					"unknown arrival shape %q (want poisson or diurnal)", shape.text)
			}
			attrs, err2 := p.attrs("traffic")
			if err2 != nil {
				return nil, err2
			}
			s.Traffic = append(s.Traffic, Traffic{Pos: t.pos, Shape: shape.text, Attrs: attrs})
		case t.kind == tokIdent && t.text == "storm":
			p.take()
			kind, err := p.expect(tokIdent, "storm")
			if err != nil {
				return nil, err
			}
			if kind.text != "kill" && kind.text != "drain" {
				return nil, p.errf(kind.pos, "storm",
					"unknown storm kind %q (want kill or drain)", kind.text)
			}
			attrs, err2 := p.attrs("storm")
			if err2 != nil {
				return nil, err2
			}
			s.Storms = append(s.Storms, Storm{Pos: t.pos, Kind: kind.text, Attrs: attrs})
		case t.kind == tokIdent && p.peek2().kind == tokEq:
			a, err := p.attr("setting")
			if err != nil {
				return nil, err
			}
			s.Settings = append(s.Settings, *a)
		default:
			return nil, p.errf(t.pos, "scenario",
				"expected a setting, 'devices', 'deploy', 'traffic', 'storm' or '}', found %s", describe(t))
		}
	}
}

// devices parses either the `devices = N` shorthand or the explicit
// `devices { PART = N ... }` inventory.
func (p *parser) devices(s *Scenario) *Error {
	kw := p.take() // "devices"
	if s.Devices != nil || s.DeviceCount != 0 {
		return p.errf(kw.pos, "devices", "duplicate devices declaration (first at %s)", s.DevicesPos)
	}
	s.DevicesPos = kw.pos
	t := p.peek()
	switch t.kind {
	case tokEq:
		p.take()
		n, err := p.expect(tokNumber, "devices")
		if err != nil {
			return err
		}
		v, perr := strconv.ParseInt(n.text, 10, 64)
		if perr != nil || v <= 0 {
			return p.errf(n.pos, "devices", "device count must be a positive integer, found %q", n.text)
		}
		s.DeviceCount = int(v)
		return nil
	case tokLBrace:
		p.take()
		s.Devices = map[string]int{}
		for {
			t := p.peek()
			if t.kind == tokRBrace {
				p.take()
				return nil
			}
			part, err := p.expect(tokIdent, "devices")
			if err != nil {
				return err
			}
			if _, err := p.expect(tokEq, "devices"); err != nil {
				return err
			}
			n, err := p.expect(tokNumber, "devices")
			if err != nil {
				return err
			}
			v, perr := strconv.ParseInt(n.text, 10, 64)
			if perr != nil || v <= 0 {
				return p.errf(n.pos, "devices", "device count must be a positive integer, found %q", n.text)
			}
			if _, dup := s.Devices[part.text]; dup {
				return p.errf(part.pos, "devices", "duplicate device part %q", part.text)
			}
			s.Devices[part.text] = int(v)
		}
	}
	return p.errf(t.pos, "devices", "expected '=' or '{', found %s", describe(t))
}

// attrs parses a possibly-empty attribute list: it extends while the next
// token is an identifier immediately followed by '='.
func (p *parser) attrs(production string) ([]Attr, *Error) {
	var out []Attr
	seen := map[string]bool{}
	for p.peek().kind == tokIdent && p.peek2().kind == tokEq {
		a, err := p.attr(production)
		if err != nil {
			return nil, err
		}
		if seen[a.Name] {
			return nil, p.errf(a.Pos, production, "duplicate attribute %q", a.Name)
		}
		seen[a.Name] = true
		out = append(out, *a)
	}
	if t := p.peek(); t.kind == tokErr {
		return nil, p.errf(t.pos, production, "%s", t.text)
	}
	return out, nil
}

func (p *parser) attr(production string) (*Attr, *Error) {
	name := p.take() // ident, guaranteed by caller's lookahead
	p.take()         // '='
	v, err := p.value(production)
	if err != nil {
		return nil, err
	}
	return &Attr{Pos: name.pos, Name: name.text, Value: *v}, nil
}

// value parses one literal, resolving the raw number token into
// int/float/duration and absorbing a '%' or '/s' suffix.
func (p *parser) value(production string) (*Value, *Error) {
	t := p.peek()
	switch t.kind {
	case tokIdent:
		p.take()
		return &Value{Pos: t.pos, Kind: IdentVal, Str: t.text}, nil
	case tokString:
		p.take()
		return &Value{Pos: t.pos, Kind: StringVal, Str: t.text}, nil
	case tokNumber:
		p.take()
		v, err := p.number(t, production)
		if err != nil {
			return nil, err
		}
		switch p.peek().kind {
		case tokPercent:
			p.take()
			f, err := numeric(v)
			if err != nil {
				return nil, p.errf(t.pos, production, "percent needs a plain number, found %q", t.text)
			}
			return &Value{Pos: t.pos, Kind: PercentVal, Float: f}, nil
		case tokSlash:
			p.take()
			unit, uerr := p.expect(tokIdent, production)
			if uerr != nil {
				return nil, uerr
			}
			if unit.text != "s" {
				return nil, p.errf(unit.pos, production, "rate unit must be /s, found /%s", unit.text)
			}
			f, err := numeric(v)
			if err != nil {
				return nil, p.errf(t.pos, production, "rate needs a plain number, found %q", t.text)
			}
			return &Value{Pos: t.pos, Kind: RateVal, Float: f}, nil
		}
		return v, nil
	case tokErr:
		return nil, p.errf(t.pos, production, "%s", t.text)
	}
	return nil, p.errf(t.pos, production, "expected a value, found %s", describe(t))
}

// number resolves a raw number token: pure digits are IntVal, a dotted
// digit run is FloatVal (no exponent form exists in the grammar), and
// anything with letters must parse as a Go duration.
func (p *parser) number(t token, production string) (*Value, *Error) {
	if isDigits(t.text) {
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf(t.pos, production, "integer %q out of range", t.text)
		}
		return &Value{Pos: t.pos, Kind: IntVal, Int: i}, nil
	}
	if isDecimal(t.text) {
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf(t.pos, production, "float %q out of range", t.text)
		}
		return &Value{Pos: t.pos, Kind: FloatVal, Float: f}, nil
	}
	if d, err := time.ParseDuration(t.text); err == nil {
		if d < 0 {
			return nil, p.errf(t.pos, production, "negative duration %q", t.text)
		}
		return &Value{Pos: t.pos, Kind: DurationVal, Dur: d}, nil
	}
	return nil, p.errf(t.pos, production,
		"malformed number %q (want an integer, float or duration like 500ms)", t.text)
}

func isDigits(s string) bool {
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return len(s) > 0
}

// isDecimal matches digits '.' digits — the only float literal form.
func isDecimal(s string) bool {
	dot := -1
	for i, r := range s {
		if r == '.' {
			if dot >= 0 {
				return false
			}
			dot = i
			continue
		}
		if r < '0' || r > '9' {
			return false
		}
	}
	return dot > 0 && dot < len(s)-1
}

func numeric(v *Value) (float64, error) {
	switch v.Kind {
	case IntVal:
		return float64(v.Int), nil
	case FloatVal:
		return v.Float, nil
	}
	return 0, fmt.Errorf("not numeric")
}
