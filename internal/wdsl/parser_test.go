package wdsl

import (
	"strings"
	"testing"
	"time"
)

// exampleSrc exercises every production: models of all four layer kinds,
// tenants of both classes, and a scenario with settings, a device
// inventory, deploys, both arrival shapes and both storm kinds.
const exampleSrc = `
# An annotated workload: two models, two tenants, one stormy afternoon.
model "echo-lstm" {
  layer lstm hidden=64 steps=2
  layer gru hidden=64 steps=2   # stacked second stage
}
model "aft" {
  layer attention hidden=32 steps=4
}
model "scorer" {
  layer mlp dim=16 layers=3 act=relu
}

tenant "lat-0" class=latency max_leases=8
tenant "bat-0" class=batch weight=2

scenario {
  seed      = 7
  duration  = 30s
  heartbeat = 500ms
  tick      = 1s
  sample    = 25%
  queue_cap = 8
  devices { XCVU37P = 9  XCKU115 = 3 }
  deploy "echo-lstm" tenant="lat-0" replicas=2
  deploy "aft" tenant="bat-0"
  traffic poisson rate=12/s tenant="lat-0" model="echo-lstm"
  traffic diurnal rate=20/s trough=20% period=10s tenant="bat-0" model="aft"
  storm kill at=10s devices=2 for=5s
  storm drain at=20s devices=1 for=4s
}
`

func TestParseExample(t *testing.T) {
	f, err := Parse(exampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Models) != 3 || len(f.Tenants) != 2 || f.Scenario == nil {
		t.Fatalf("parsed %d models, %d tenants, scenario=%v", len(f.Models), len(f.Tenants), f.Scenario != nil)
	}
	if f.Models[0].Name != "echo-lstm" || len(f.Models[0].Layers) != 2 {
		t.Errorf("model 0 = %+v", f.Models[0])
	}
	if k := f.Models[2].Layers[0].Kind; k != "mlp" {
		t.Errorf("scorer layer kind = %q", k)
	}
	s := f.Scenario
	if s.Devices["XCVU37P"] != 9 || s.Devices["XCKU115"] != 3 {
		t.Errorf("devices = %v", s.Devices)
	}
	if len(s.Deploys) != 2 || len(s.Traffic) != 2 || len(s.Storms) != 2 {
		t.Errorf("scenario items: %d deploys %d traffic %d storms", len(s.Deploys), len(s.Traffic), len(s.Storms))
	}
	if s.Traffic[1].Shape != "diurnal" {
		t.Errorf("traffic 1 shape = %q", s.Traffic[1].Shape)
	}
}

// TestRoundTrip pins the canonical printer: parse → print → parse yields
// a semantically identical file, and printing that file again yields the
// same bytes (the printer is a fixpoint on its own output).
func TestRoundTrip(t *testing.T) {
	f1, err := Parse(exampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	p1 := f1.Print()
	f2, err := Parse(p1)
	if err != nil {
		t.Fatalf("reparsing printed form: %v\n%s", err, p1)
	}
	if !f1.Equal(f2) {
		t.Fatalf("round trip changed the AST\nprinted:\n%s", p1)
	}
	if p2 := f2.Print(); p2 != p1 {
		t.Fatalf("printer not a fixpoint:\nfirst:\n%s\nsecond:\n%s", p1, p2)
	}
}

func TestValueForms(t *testing.T) {
	src := `tenant "x" a=1 b=2.5 c=1h30m d=12.5% e=40/s f=latency g="quo\"ted"`
	// a=1 etc. aren't real tenant attributes; the parser doesn't know
	// schemas — only Compile does.
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	attrs := f.Tenants[0].Attrs
	want := []struct {
		kind ValueKind
		str  string
	}{
		{IntVal, "1"}, {FloatVal, "2.5"}, {DurationVal, "1h30m0s"},
		{PercentVal, "12.5%"}, {RateVal, "40.0/s"}, {IdentVal, "latency"},
		{StringVal, `"quo\"ted"`},
	}
	if len(attrs) != len(want) {
		t.Fatalf("got %d attrs, want %d", len(attrs), len(want))
	}
	for i, w := range want {
		if attrs[i].Value.Kind != w.kind || attrs[i].Value.String() != w.str {
			t.Errorf("attr %d: kind=%v text=%q, want kind=%v text=%q",
				i, attrs[i].Value.Kind, attrs[i].Value.String(), w.kind, w.str)
		}
	}
	if attrs[2].Value.Dur != 90*time.Minute {
		t.Errorf("duration = %v", attrs[2].Value.Dur)
	}
}

func TestParseEmptyAndCommentOnly(t *testing.T) {
	for _, src := range []string{"", "   \n\t ", "# just a comment\n# another\n"} {
		f, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		if len(f.Models) != 0 || len(f.Tenants) != 0 || f.Scenario != nil {
			t.Errorf("Parse(%q) produced declarations", src)
		}
	}
}

func TestDeviceShorthand(t *testing.T) {
	f, err := Parse(`scenario { duration = 1s devices = 1000 }`)
	if err != nil {
		t.Fatal(err)
	}
	if f.Scenario.DeviceCount != 1000 || f.Scenario.Devices != nil {
		t.Fatalf("scenario devices = %d / %v", f.Scenario.DeviceCount, f.Scenario.Devices)
	}
	spec, err := Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	c := spec.Scenario.Cluster
	if c["XCVU37P"] != 750 || c["XCKU115"] != 250 {
		t.Errorf("1000-device shorthand split = %v, want 750/250", c)
	}
}

// TestAttrListTermination pins the two-token lookahead: an identifier not
// followed by '=' ends the attribute list instead of being swallowed.
func TestAttrListTermination(t *testing.T) {
	f, err := Parse("tenant \"a\" class=batch\ntenant \"b\"")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Tenants) != 2 || len(f.Tenants[0].Attrs) != 1 || len(f.Tenants[1].Attrs) != 0 {
		t.Fatalf("tenants = %+v", f.Tenants)
	}
	if !strings.Contains(f.Print(), `tenant "b"`) {
		t.Error("second tenant lost in printing")
	}
}
