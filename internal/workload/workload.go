// Package workload synthesizes the system-level benchmark sets of §4.1
// (Table 1): sequences of GRU/LSTM inference tasks drawn from small,
// medium and large model classes, arriving at random intervals to emulate
// a dynamic cloud environment. The paper generates these synthetically
// because no real-world FPGA cloud trace is public; we follow the same
// methodology with a seeded generator.
package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"mlvfpga/internal/kernels"
)

// Class buckets models by hidden-unit count (Table 1's footnote).
type Class int

// Model classes.
const (
	// Small: #hidden units <= 1024.
	Small Class = iota
	// Medium: 1024 < #hidden units <= 2048.
	Medium
	// Large: #hidden units > 2048.
	Large
)

func (c Class) String() string {
	switch c {
	case Small:
		return "S"
	case Medium:
		return "M"
	case Large:
		return "L"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Classify buckets a hidden size per Table 1.
func Classify(hidden int) Class {
	switch {
	case hidden <= 1024:
		return Small
	case hidden <= 2048:
		return Medium
	default:
		return Large
	}
}

// classLayers lists the concrete model configurations each class draws
// from. Small layers come from the Table 4 DeepBench set; medium and large
// extend the same cells past the class boundaries.
var classLayers = map[Class][]kernels.LayerSpec{
	Small: {
		{Kind: kernels.GRU, Hidden: 512, TimeSteps: 1},
		{Kind: kernels.GRU, Hidden: 1024, TimeSteps: 100},
		{Kind: kernels.LSTM, Hidden: 256, TimeSteps: 150},
		{Kind: kernels.LSTM, Hidden: 512, TimeSteps: 25},
		{Kind: kernels.LSTM, Hidden: 1024, TimeSteps: 25},
	},
	Medium: {
		{Kind: kernels.GRU, Hidden: 1536, TimeSteps: 375},
		{Kind: kernels.LSTM, Hidden: 1536, TimeSteps: 50},
		{Kind: kernels.GRU, Hidden: 2048, TimeSteps: 100},
		{Kind: kernels.LSTM, Hidden: 2048, TimeSteps: 50},
	},
	Large: {
		{Kind: kernels.GRU, Hidden: 2560, TimeSteps: 100},
		{Kind: kernels.LSTM, Hidden: 2560, TimeSteps: 50},
		{Kind: kernels.LSTM, Hidden: 2304, TimeSteps: 64},
		{Kind: kernels.GRU, Hidden: 3072, TimeSteps: 80},
	},
}

// ClassLayers returns the layer menu of a class.
func ClassLayers(c Class) []kernels.LayerSpec {
	return append([]kernels.LayerSpec{}, classLayers[c]...)
}

// Composition is one Table 1 workload mix.
type Composition struct {
	Index   int
	S, M, L float64
}

func (c Composition) String() string {
	return fmt.Sprintf("set %d: %.0f%% S + %.0f%% M + %.0f%% L", c.Index, 100*c.S, 100*c.M, 100*c.L)
}

// Table1 returns the ten compositions of Table 1.
func Table1() []Composition {
	return []Composition{
		{1, 1.00, 0.00, 0.00},
		{2, 0.00, 1.00, 0.00},
		{3, 0.00, 0.00, 1.00},
		{4, 0.50, 0.50, 0.00},
		{5, 0.50, 0.00, 0.50},
		{6, 0.00, 0.50, 0.50},
		{7, 0.33, 0.33, 0.34},
		{8, 0.10, 0.30, 0.60},
		{9, 0.30, 0.60, 0.10},
		{10, 0.60, 0.10, 0.30},
	}
}

// Task is one inference request.
type Task struct {
	ID      int
	Spec    kernels.LayerSpec
	Class   Class
	Arrival time.Duration
}

// Options configures set generation.
type Options struct {
	// NumTasks is the sequence length.
	NumTasks int
	// MeanInterarrival is the mean of the exponential interarrival time.
	MeanInterarrival time.Duration
	// Seed makes the set reproducible.
	Seed int64
}

// ErrBadComposition is returned when fractions do not sum to ~1.
var ErrBadComposition = errors.New("workload: composition fractions must sum to 1")

// Generate draws a task sequence from a composition: each task's class is
// sampled from the mix, the concrete layer uniformly within the class, and
// arrivals follow a Poisson process.
func Generate(comp Composition, opt Options) ([]Task, error) {
	if opt.NumTasks <= 0 {
		return nil, fmt.Errorf("workload: NumTasks = %d", opt.NumTasks)
	}
	if opt.MeanInterarrival <= 0 {
		return nil, fmt.Errorf("workload: MeanInterarrival = %v", opt.MeanInterarrival)
	}
	sum := comp.S + comp.M + comp.L
	if sum < 0.999 || sum > 1.001 {
		return nil, fmt.Errorf("%w: got %v", ErrBadComposition, sum)
	}
	r := rand.New(rand.NewSource(opt.Seed))
	tasks := make([]Task, 0, opt.NumTasks)
	now := time.Duration(0)
	for i := 0; i < opt.NumTasks; i++ {
		now += time.Duration(r.ExpFloat64() * float64(opt.MeanInterarrival))
		u := r.Float64() * sum
		var class Class
		switch {
		case u < comp.S:
			class = Small
		case u < comp.S+comp.M:
			class = Medium
		default:
			class = Large
		}
		menu := classLayers[class]
		spec := menu[r.Intn(len(menu))]
		tasks = append(tasks, Task{ID: i, Spec: spec, Class: class, Arrival: now})
	}
	return tasks, nil
}

// Mix reports the realized class fractions of a task sequence.
func Mix(tasks []Task) (s, m, l float64) {
	if len(tasks) == 0 {
		return 0, 0, 0
	}
	for _, t := range tasks {
		switch t.Class {
		case Small:
			s++
		case Medium:
			m++
		case Large:
			l++
		}
	}
	n := float64(len(tasks))
	return s / n, m / n, l / n
}
