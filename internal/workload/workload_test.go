package workload

import (
	"math"
	"testing"
	"time"
)

func TestClassify(t *testing.T) {
	cases := map[int]Class{256: Small, 1024: Small, 1025: Medium, 2048: Medium, 2049: Large, 3072: Large}
	for h, want := range cases {
		if got := Classify(h); got != want {
			t.Errorf("Classify(%d) = %v, want %v", h, got, want)
		}
	}
}

func TestClassStrings(t *testing.T) {
	if Small.String() != "S" || Medium.String() != "M" || Large.String() != "L" {
		t.Error("class names wrong")
	}
}

func TestClassLayersConsistent(t *testing.T) {
	for _, c := range []Class{Small, Medium, Large} {
		layers := ClassLayers(c)
		if len(layers) == 0 {
			t.Fatalf("class %v has no layers", c)
		}
		for _, l := range layers {
			if Classify(l.Hidden) != c {
				t.Errorf("layer %v listed under class %v", l, c)
			}
			if l.Hidden%4 != 0 {
				t.Errorf("layer %v hidden not divisible by 4 (needed for 4-way scale-out)", l)
			}
		}
	}
}

func TestTable1(t *testing.T) {
	comps := Table1()
	if len(comps) != 10 {
		t.Fatalf("Table1 has %d sets, want 10", len(comps))
	}
	for _, c := range comps {
		sum := c.S + c.M + c.L
		if math.Abs(sum-1) > 0.001 {
			t.Errorf("%v sums to %v", c, sum)
		}
	}
	// Spot-check set 8: 10% S + 30% M + 60% L.
	if comps[7].S != 0.10 || comps[7].M != 0.30 || comps[7].L != 0.60 {
		t.Errorf("set 8 = %+v", comps[7])
	}
}

func TestGenerate(t *testing.T) {
	comp := Table1()[6] // 33/33/34
	tasks, err := Generate(comp, Options{NumTasks: 2000, MeanInterarrival: time.Millisecond, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 2000 {
		t.Fatalf("generated %d tasks", len(tasks))
	}
	// Arrivals strictly increasing and positive.
	prev := time.Duration(-1)
	for _, task := range tasks {
		if task.Arrival <= prev {
			t.Fatal("arrivals must be increasing")
		}
		prev = task.Arrival
	}
	// Realized mix near the composition.
	s, m, l := Mix(tasks)
	if math.Abs(s-0.33) > 0.05 || math.Abs(m-0.33) > 0.05 || math.Abs(l-0.34) > 0.05 {
		t.Errorf("realized mix = %.2f/%.2f/%.2f", s, m, l)
	}
	// Mean interarrival near 1ms.
	mean := tasks[len(tasks)-1].Arrival / time.Duration(len(tasks))
	if mean < 800*time.Microsecond || mean > 1200*time.Microsecond {
		t.Errorf("mean interarrival = %v", mean)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	opt := Options{NumTasks: 50, MeanInterarrival: time.Millisecond, Seed: 7}
	a, _ := Generate(Table1()[0], opt)
	b, _ := Generate(Table1()[0], opt)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce the sequence")
		}
	}
	opt.Seed = 8
	c, _ := Generate(Table1()[0], opt)
	same := true
	for i := range a {
		if a[i].Spec != c[i].Spec || a[i].Arrival != c[i].Arrival {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds must differ")
	}
}

func TestGeneratePureComposition(t *testing.T) {
	tasks, err := Generate(Table1()[2], Options{NumTasks: 100, MeanInterarrival: time.Millisecond, Seed: 1}) // 100% L
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range tasks {
		if task.Class != Large {
			t.Fatalf("task %v in 100%%-L set has class %v", task.ID, task.Class)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	good := Options{NumTasks: 10, MeanInterarrival: time.Millisecond, Seed: 1}
	if _, err := Generate(Composition{Index: 0, S: 0.5}, good); err == nil {
		t.Error("bad composition must fail")
	}
	bad := good
	bad.NumTasks = 0
	if _, err := Generate(Table1()[0], bad); err == nil {
		t.Error("zero tasks must fail")
	}
	bad = good
	bad.MeanInterarrival = 0
	if _, err := Generate(Table1()[0], bad); err == nil {
		t.Error("zero interarrival must fail")
	}
}

func TestMixEmpty(t *testing.T) {
	if s, m, l := Mix(nil); s != 0 || m != 0 || l != 0 {
		t.Error("empty mix must be zero")
	}
}
