// Package mlvfpga is a from-scratch reproduction of "When
// Application-Specific ISA Meets FPGAs: A Multi-layer Virtualization
// Framework for Heterogeneous Cloud FPGAs" (Zha & Li, ASPLOS 2021).
//
// The package is the public facade over the framework's layers:
//
//   - an RTL substrate (Verilog-subset parser, elaborator, simulator,
//     equivalence checker) and a generated BrainWave-like accelerator;
//   - the paper's system abstraction: soft-block trees built from the two
//     primitive parallel patterns (data and pipeline parallelism);
//   - the custom tools: the decomposing step (§2.2.1), the partitioning
//     step (§2.2.2), compilation onto a ViTAL-like virtual-block
//     abstraction, and the scale-out optimization (§2.3);
//   - a functional AS ISA simulator with BFP/float16 numerics, calibrated
//     timing models, and a runtime management system evaluated by
//     discrete-event simulation of the paper's 3x XCVU37P + 1x XCKU115
//     cluster.
//
// Every table and figure of the paper's evaluation can be regenerated; see
// the Reproduce* functions, the benchmarks in bench_test.go, and
// cmd/mlv-bench.
package mlvfpga

import (
	"fmt"

	"mlvfpga/internal/accel"
	"mlvfpga/internal/artifactstore"
	"mlvfpga/internal/bwrtl"
	"mlvfpga/internal/core"
	"mlvfpga/internal/decompose"
	"mlvfpga/internal/experiments"
	"mlvfpga/internal/kernels"
	"mlvfpga/internal/partition"
	"mlvfpga/internal/perf"
	"mlvfpga/internal/resource"
	"mlvfpga/internal/rms"
	"mlvfpga/internal/rtl"
	"mlvfpga/internal/scaleout"
	"mlvfpga/internal/softblock"
	"mlvfpga/internal/workload"
)

// Core abstraction types, re-exported for API users.
type (
	// Accelerator is a decomposed AS ISA-based accelerator: the control
	// soft block plus the data-path soft-block tree.
	Accelerator = softblock.Accelerator
	// SoftBlock is one node of the soft-block tree (§2.1).
	SoftBlock = softblock.Block
	// BlockKind classifies soft blocks (leaf / data / pipeline).
	BlockKind = softblock.Kind
	// Design is a parsed RTL design.
	Design = rtl.Design
	// PartitionResult is the Fig. 6 binary partition tree.
	PartitionResult = partition.Result
	// Compiled is the full offline-flow output for one instance.
	Compiled = core.Compiled
	// CompileOptions configures the offline flow, including the
	// Parallelism knob bounding the worker goroutines (0 = one per
	// logical CPU, 1 = strictly sequential; the Compiled result is
	// identical at every setting).
	CompileOptions = core.Options
	// LayerSpec identifies a GRU/LSTM benchmark layer.
	LayerSpec = kernels.LayerSpec
	// Machine is the functional AS ISA accelerator simulator.
	Machine = accel.Machine
	// ResourceVector counts FPGA resources.
	ResourceVector = resource.Vector
)

// Soft-block kinds.
const (
	Leaf         = softblock.Leaf
	DataParallel = softblock.DataParallel
	Pipeline     = softblock.Pipeline
)

// RNN cell kinds.
const (
	LSTM = kernels.LSTM
	GRU  = kernels.GRU
)

// GenerateAcceleratorRTL emits the Verilog of a BrainWave-like accelerator
// instance with the given number of tile engines (§3, Fig. 9). useURAM
// selects the UltraRAM weight-memory variant (XCVU37P targets).
func GenerateAcceleratorRTL(tiles int, useURAM bool) (string, error) {
	return bwrtl.Generate(bwrtl.Profile{Tiles: tiles, UseURAM: useURAM})
}

// AcceleratorTopModule is the generated design's top-level module name.
const AcceleratorTopModule = bwrtl.TopModule

// AcceleratorControlModules lists the module names the designer marks as
// the control path for the decomposing tool.
func AcceleratorControlModules() []string { return bwrtl.ControlModules() }

// ParseRTL parses Verilog-subset source into a design rooted at top.
func ParseRTL(src, top string) (*Design, error) { return rtl.ParseDesign(src, top) }

// Decompose runs the §2.2.1 decomposing step on a design: the control path
// (marked by module name) becomes one soft block, and the data path is
// decomposed into a tree of the two primitive parallel patterns.
func Decompose(d *Design, top string, controlModules []string, seed int64) (*Accelerator, error) {
	res, err := decompose.Decompose(d, top, nil, decompose.Options{
		ControlModules: controlModules,
		Seed:           seed,
	})
	if err != nil {
		return nil, err
	}
	return res.Accelerator, nil
}

// Partition runs the §2.2.2 iterative bisection on a decomposed data path:
// pipeline nodes cut at the minimal-bandwidth connection, data-parallel
// nodes split evenly. N iterations support deployments onto up to 2^N
// devices.
func Partition(acc *Accelerator, iterations int) (*PartitionResult, error) {
	if acc == nil {
		return nil, fmt.Errorf("mlvfpga: nil accelerator")
	}
	return partition.Partition(acc.Data, iterations)
}

// CompileInstance runs the whole offline flow (generate RTL, decompose,
// partition, map onto every device type's virtual-block abstraction) for a
// BrainWave-like instance. The flow parallelizes across one worker per
// logical CPU; use CompileInstanceWithOptions to pin the worker count.
func CompileInstance(tiles, partitionIterations int) (*Compiled, error) {
	return CompileInstanceWithOptions(CompileOptions{
		Tiles:               tiles,
		PartitionIterations: partitionIterations,
		Seed:                1,
		PatternAware:        true,
	})
}

// CompileInstanceWithOptions runs the offline flow with explicit options,
// including the Parallelism knob (see CompileOptions).
func CompileInstanceWithOptions(opts CompileOptions) (*Compiled, error) {
	return core.CompileAccelerator(opts)
}

// ArtifactStore is the persistent content-addressed compilation cache:
// compiled artifacts are keyed by a canonical structural hash of
// everything that determines the result and stored as checksummed blobs
// on disk, with an in-process LRU in front.
type ArtifactStore = artifactstore.Store

// ArtifactStoreOptions tunes an ArtifactStore's memory and disk bounds.
type ArtifactStoreOptions = artifactstore.Options

// OpenArtifactCache opens (creating if needed) the on-disk compilation
// cache at dir with default bounds. dir == "" yields a memory-only cache
// for the life of the process.
func OpenArtifactCache(dir string) (*ArtifactStore, error) {
	return artifactstore.Open(dir, artifactstore.Options{})
}

// CompileInstanceCached is CompileInstance fronted by an artifact cache:
// on a hit the whole offline flow is skipped and the returned artifact is
// bit-identical to a cold compile. warm reports whether the artifact came
// from the cache; a nil store degrades to a plain cold compile.
func CompileInstanceCached(tiles, partitionIterations int, store *ArtifactStore) (c *Compiled, warm bool, err error) {
	c, _, warm, err = core.CompileAcceleratorCached(CompileOptions{
		Tiles:               tiles,
		PartitionIterations: partitionIterations,
		Seed:                1,
		PatternAware:        true,
	}, store)
	return c, warm, err
}

// InferenceResult reports a functional-simulation run.
type InferenceResult struct {
	// Outputs holds h_t per timestep.
	Outputs [][]float64
	// Reference holds the float64 golden model's h_t per timestep.
	Reference [][]float64
	// MaxAbsError is the worst element error against the reference.
	MaxAbsError float64
	// Instructions executed on the simulator.
	Instructions int
	// MACs performed by the tile engines.
	MACs int64
}

// RunInference builds an LSTM/GRU kernel with random weights, executes it
// on the functional AS ISA simulator (BFP matrix math, float16 vector
// ops), and compares every timestep against the float64 reference.
func RunInference(spec LayerSpec, inputs [][]float64, seed int64) (*InferenceResult, error) {
	if len(inputs) != spec.TimeSteps {
		return nil, fmt.Errorf("mlvfpga: %d inputs for %d timesteps", len(inputs), spec.TimeSteps)
	}
	w := kernels.RandomWeights(spec.Kind, spec.Hidden, seed)
	k, err := kernels.Build(w, spec.TimeSteps, 2)
	if err != nil {
		return nil, err
	}
	k.Cfg.MantissaBits = 9
	m, err := k.NewMachine()
	if err != nil {
		return nil, err
	}
	for t, x := range inputs {
		if err := k.SetInput(m, t, x); err != nil {
			return nil, err
		}
	}
	if err := m.Run(k.Prog); err != nil {
		return nil, err
	}
	ref := kernels.NewReference(w)
	out := &InferenceResult{}
	for t, x := range inputs {
		want, err := ref.Step(x)
		if err != nil {
			return nil, err
		}
		got, err := k.ReadOutput(m, t)
		if err != nil {
			return nil, err
		}
		out.Outputs = append(out.Outputs, got)
		out.Reference = append(out.Reference, want)
		for i := range want {
			if d := abs(got[i] - want[i]); d > out.MaxAbsError {
				out.MaxAbsError = d
			}
		}
	}
	st := m.Stats()
	out.Instructions = st.Instructions
	out.MACs = st.MACs
	return out, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// PredictLatency returns the modelled inference latency of a layer on a
// device under the baseline (AS ISA-only) and virtualized deployments,
// plus the virtualization overhead fraction (Table 4).
func PredictLatency(spec LayerSpec, device string) (baseline, virtualized float64, overhead float64, err error) {
	p := perf.DefaultParams()
	inst, err := perf.ChooseInstance(spec, device)
	if err != nil {
		return 0, 0, 0, err
	}
	b := perf.Baseline(spec, inst, p)
	v, err := perf.Virtualized(spec, inst, 2, p)
	if err != nil {
		return 0, 0, 0, err
	}
	return b.Total.Seconds(), v.Total.Seconds(), perf.OverheadFrac(b, v), nil
}

// WorkloadResult is one system's aggregated throughput on a workload set.
type WorkloadResult = rms.Result

// SimulateCluster runs a Table 1 workload set (by index, 1..10) through
// the virtualized framework on the paper's cluster and returns the
// aggregated result alongside the AS ISA-only baseline.
func SimulateCluster(setIndex, numTasks int, seed int64) (proposed, baseline WorkloadResult, err error) {
	comps := workload.Table1()
	if setIndex < 1 || setIndex > len(comps) {
		return proposed, baseline, fmt.Errorf("mlvfpga: workload set %d out of range [1,%d]", setIndex, len(comps))
	}
	opt := experiments.DefaultFig12Options()
	tasks, err := workload.Generate(comps[setIndex-1], workload.Options{
		NumTasks:         numTasks,
		MeanInterarrival: opt.MeanInterarrival,
		Seed:             seed,
	})
	if err != nil {
		return proposed, baseline, err
	}
	p := perf.DefaultParams()
	baseline, err = rms.SimulateBaseline(tasks, resource.PaperCluster(), p)
	if err != nil {
		return proposed, baseline, err
	}
	proposed, err = rms.Simulate(tasks, rms.Config{
		Cluster: resource.PaperCluster(),
		Mode:    rms.Flexible,
		DB:      rms.NewDatabase(rms.Flexible, p, scaleout.DefaultOptions()),
	})
	return proposed, baseline, err
}

// Reproduction entry points: one per paper table/figure. See
// internal/experiments for the row types and EXPERIMENTS.md for recorded
// paper-vs-measured results.
var (
	ReproduceTable2            = experiments.Table2
	ReproduceTable3            = experiments.Table3
	ReproduceTable4            = experiments.Table4
	ReproduceFig11             = experiments.Fig11
	ReproduceFig12             = experiments.Fig12
	ReproduceCompileOverhead   = experiments.CompileOverhead
	ReproduceInstructionBuffer = experiments.InstructionBufferFit
	ReproduceAblationPartition = experiments.AblationPartition
	ReproduceAblationNumerics  = experiments.AblationNumerics
	ReproduceAblationPolicy    = experiments.AblationPolicy
	ReproduceLoadSweep         = experiments.LoadSweep
	DefaultFig12Options        = experiments.DefaultFig12Options
)
