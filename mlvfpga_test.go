package mlvfpga

import (
	"math/rand"
	"testing"
)

func TestOfflineFlowThroughFacade(t *testing.T) {
	src, err := GenerateAcceleratorRTL(4, true)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ParseRTL(src, AcceleratorTopModule)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Decompose(d, AcceleratorTopModule, AcceleratorControlModules(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Data.Kind != DataParallel || len(acc.Data.Children) != 4 {
		t.Fatalf("decomposition shape wrong:\n%s", acc.Data)
	}
	pr, err := Partition(acc, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pr.MaxPieces() != 4 {
		t.Errorf("max pieces = %d", pr.MaxPieces())
	}
	if _, err := Partition(nil, 1); err == nil {
		t.Error("nil accelerator must fail")
	}
}

func TestCompileInstanceFacade(t *testing.T) {
	c, err := CompileInstance(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Images) == 0 {
		t.Error("no images")
	}
}

func TestRunInferenceFacade(t *testing.T) {
	spec := LayerSpec{Kind: GRU, Hidden: 32, TimeSteps: 3}
	r := rand.New(rand.NewSource(5))
	inputs := make([][]float64, spec.TimeSteps)
	for i := range inputs {
		x := make([]float64, spec.Hidden)
		for j := range x {
			x[j] = r.NormFloat64() * 0.5
		}
		inputs[i] = x
	}
	res, err := RunInference(spec, inputs, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 3 || res.MaxAbsError > 0.1 {
		t.Errorf("inference result: %d outputs, max error %v", len(res.Outputs), res.MaxAbsError)
	}
	if res.Instructions == 0 || res.MACs == 0 {
		t.Error("stats empty")
	}
	if _, err := RunInference(spec, inputs[:1], 7); err == nil {
		t.Error("input count mismatch must fail")
	}
}

func TestPredictLatencyFacade(t *testing.T) {
	spec := LayerSpec{Kind: LSTM, Hidden: 512, TimeSteps: 25}
	base, virt, ovh, err := PredictLatency(spec, "XCVU37P")
	if err != nil {
		t.Fatal(err)
	}
	if base <= 0 || virt <= base || ovh <= 0 || ovh > 0.1 {
		t.Errorf("latency prediction: base %v virt %v ovh %v", base, virt, ovh)
	}
	if _, _, _, err := PredictLatency(spec, "bogus"); err == nil {
		t.Error("unknown device must fail")
	}
}

func TestSimulateClusterFacade(t *testing.T) {
	prop, base, err := SimulateCluster(1, 80, 3)
	if err != nil {
		t.Fatal(err)
	}
	if prop.Completed != 80 || base.Completed != 80 {
		t.Errorf("completions: %d / %d", prop.Completed, base.Completed)
	}
	if prop.ThroughputPerSec <= base.ThroughputPerSec {
		t.Errorf("virtualized (%v/s) must beat baseline (%v/s) on the all-small set",
			prop.ThroughputPerSec, base.ThroughputPerSec)
	}
	if _, _, err := SimulateCluster(0, 10, 1); err == nil {
		t.Error("set index 0 must fail")
	}
	if _, _, err := SimulateCluster(11, 10, 1); err == nil {
		t.Error("set index 11 must fail")
	}
}

func TestReproduceEntryPoints(t *testing.T) {
	if _, err := ReproduceTable2(); err != nil {
		t.Error(err)
	}
	if _, err := ReproduceTable3(); err != nil {
		t.Error(err)
	}
	if _, err := ReproduceTable4(); err != nil {
		t.Error(err)
	}
	if _, err := ReproduceInstructionBuffer(); err != nil {
		t.Error(err)
	}
}
